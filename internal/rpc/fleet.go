package rpc

// The fleet.* method family: the lease protocol between a coordinating
// daemon (Server.Fleet) and remote unit workers. A worker's life is a
// loop over four verbs —
//
//	fleet.register   handshake: version check, worker ID, protocol timings
//	fleet.claim      long-poll for one leased (env, app) unit
//	fleet.heartbeat  keep the lease alive while the unit computes
//	fleet.complete   report the artifact (blobs uploaded via store.put)
//	fleet.nack       return a unit unfinished; it re-queues
//
// — and RunWorker is that loop: the whole worker mode of cmd/serve.
// Artifacts travel over the existing store.* sync verbs: PushUnit packs
// the unit files into an in-memory registry (the same layout saveUnit
// writes), uploads every blob as store.put chunk lines, and lands the
// fleet.complete on the same POST, so the server's per-connection GC
// pins hold the blobs until the coordinator's verification tags them.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/oras"
	"cloudhpc/internal/store"
)

// fleetCoordinator resolves the coordinator behind the fleet.* methods.
func (c *conn) fleetCoordinator() (*fleet.Coordinator, *Error) {
	if c.srv.Fleet != nil {
		return c.srv.Fleet, nil
	}
	return nil, errf(CodeNoFleet, "daemon has no fleet coordinator (start it with -fleet)")
}

// fleetError maps coordinator errors onto the protocol's code taxonomy.
func fleetError(err error) *Error {
	switch {
	case errors.Is(err, fleet.ErrClosed):
		return errf(CodeShuttingDown, "%v", err)
	case errors.Is(err, fleet.ErrUnknownWorker):
		return errf(CodeUnknownWorker, "%v", err)
	case errors.Is(err, fleet.ErrUnknownLease):
		return errf(CodeUnknownLease, "%v", err)
	}
	return errf(CodeInternal, "%v", err)
}

func (c *conn) fleetRegister(raw json.RawMessage) (any, *Error) {
	co, e := c.fleetCoordinator()
	if e != nil {
		return nil, e
	}
	var p FleetRegisterParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if p.ProtocolVersion != ProtocolVersion {
		e := errf(CodeInvalidParams, "unsupported protocol version %q", p.ProtocolVersion)
		e.Data = map[string]any{"supported": []string{ProtocolVersion}}
		return nil, e
	}
	reg, err := co.Register(p.Worker.Name, p.Worker.Version)
	if err != nil {
		return nil, fleetError(err)
	}
	c.srv.logf("rpc: fleet worker %s registered (%s %s)", reg.Worker, p.Worker.Name, p.Worker.Version)
	return FleetRegisterResult{
		Worker:      reg.Worker,
		LeaseMs:     reg.TTL.Milliseconds(),
		HeartbeatMs: reg.Heartbeat.Milliseconds(),
		MaxWaitMs:   reg.MaxWait.Milliseconds(),
	}, nil
}

func (c *conn) fleetClaim(raw json.RawMessage) (any, *Error) {
	co, e := c.fleetCoordinator()
	if e != nil {
		return nil, e
	}
	var p FleetClaimParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	// The long-poll blocks this connection's serial request loop — fine,
	// a worker's claim POST carries nothing else — and unblocks on the
	// connection's own context when the worker vanishes mid-poll.
	a, err := co.Claim(c.ctx, p.Worker, time.Duration(p.WaitMs)*time.Millisecond)
	switch {
	case errors.Is(err, fleet.ErrClosed):
		// Not an error to a worker: the drain signal.
		return FleetClaimResult{Closed: true}, nil
	case err != nil:
		return nil, fleetError(err)
	case a == nil:
		return FleetClaimResult{}, nil // idle poll; claim again
	}
	work := a.Work
	return FleetClaimResult{Unit: &work, Lease: a.Lease, LeaseMs: a.TTL.Milliseconds()}, nil
}

func (c *conn) fleetHeartbeat(raw json.RawMessage) (any, *Error) {
	co, e := c.fleetCoordinator()
	if e != nil {
		return nil, e
	}
	var p FleetHeartbeatParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	ttl, err := co.Heartbeat(p.Worker, p.Lease)
	if err != nil {
		return nil, fleetError(err)
	}
	return FleetHeartbeatResult{Lease: p.Lease, LeaseMs: ttl.Milliseconds()}, nil
}

func (c *conn) fleetComplete(raw json.RawMessage) (any, *Error) {
	co, e := c.fleetCoordinator()
	if e != nil {
		return nil, e
	}
	var p FleetCompleteParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if p.Key == "" || !store.ValidDigest(p.Manifest) {
		return nil, errf(CodeInvalidParams, "fleet.complete needs a unit key and a manifest digest")
	}
	dup, err := co.Complete(p.Worker, p.Lease, p.Key, p.Manifest)
	switch {
	case errors.Is(err, fleet.ErrClosed), errors.Is(err, fleet.ErrUnknownWorker):
		return nil, fleetError(err)
	case err != nil:
		// Verification failure: the artifact does not decode to the unit's
		// exact draw schedule. The lease re-queued (or fell back to local
		// compute); the worker learns why.
		return nil, errf(CodeBadArtifact, "unit %s rejected: %v", p.Key, err)
	}
	return FleetCompleteResult{Key: p.Key, Accepted: true, Duplicate: dup}, nil
}

func (c *conn) fleetNack(raw json.RawMessage) (any, *Error) {
	co, e := c.fleetCoordinator()
	if e != nil {
		return nil, e
	}
	var p FleetNackParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if err := co.Nack(p.Worker, p.Lease, p.Reason); err != nil {
		return nil, fleetError(err)
	}
	if p.Reason != "" {
		c.srv.logf("rpc: fleet worker %s nacked a unit: %s", p.Worker, p.Reason)
	}
	return FleetNackResult{Requeued: true}, nil
}

// ---- client side ----

// FleetRegister performs the worker handshake.
func (c *Client) FleetRegister(ctx context.Context, worker Implementation) (FleetRegisterResult, error) {
	var res FleetRegisterResult
	err := c.call(ctx, "fleet.register", FleetRegisterParams{ProtocolVersion: ProtocolVersion, Worker: worker}, &res)
	return res, err
}

// FleetClaim long-polls for one unit. The POST stays open for up to the
// requested wait, so ctx should cover it.
func (c *Client) FleetClaim(ctx context.Context, worker string, wait time.Duration) (FleetClaimResult, error) {
	var res FleetClaimResult
	err := c.call(ctx, "fleet.claim", FleetClaimParams{Worker: worker, WaitMs: wait.Milliseconds()}, &res)
	return res, err
}

// FleetHeartbeat extends a lease.
func (c *Client) FleetHeartbeat(ctx context.Context, worker, lease string) (FleetHeartbeatResult, error) {
	var res FleetHeartbeatResult
	err := c.call(ctx, "fleet.heartbeat", FleetHeartbeatParams{Worker: worker, Lease: lease}, &res)
	return res, err
}

// FleetNack returns a claimed unit unfinished.
func (c *Client) FleetNack(ctx context.Context, worker, lease, reason string) (FleetNackResult, error) {
	var res FleetNackResult
	err := c.call(ctx, "fleet.nack", FleetNackParams{Worker: worker, Lease: lease, Reason: reason}, &res)
	return res, err
}

// PushUnit delivers one computed unit: it packs files into the store's
// artifact layout (the same oras push saveUnit performs locally),
// uploads every blob as store.put chunks, and reports the manifest with
// fleet.complete — all in one POST, so the server's per-connection GC
// pins protect the blobs until the coordinator's verification tags the
// artifact. The server re-verifies everything on arrival: every chunk
// assembly against its digest, and the decoded records against the
// unit's exact draw schedule.
func (c *Client) PushUnit(ctx context.Context, worker, lease string, work core.UnitWork, files map[string][]byte) (FleetCompleteResult, error) {
	var res FleetCompleteResult
	pack := oras.NewRegistry()
	manifest, err := pack.Push("unit/"+work.Key, dataset.UnitArtifactType, files, nil)
	if err != nil {
		return res, fmt.Errorf("rpc: packing unit %s: %w", work.Key, err)
	}
	var body bytes.Buffer
	n := 0
	addLine := func(method string, params any) error {
		praw, err := json.Marshal(params)
		if err != nil {
			return err
		}
		n++
		line, err := json.Marshal(request{JSONRPC: "2.0", ID: json.RawMessage(strconv.Itoa(n)), Method: method, Params: praw})
		if err != nil {
			return err
		}
		body.Write(line)
		body.WriteByte('\n')
		return nil
	}
	for _, dig := range pack.SyncInventory().Digests {
		data, err := pack.FetchBlob(oras.Digest(dig))
		if err != nil {
			return res, fmt.Errorf("rpc: packing unit %s: %w", work.Key, err)
		}
		for off := 0; ; off += syncChunkBytes {
			end := min(off+syncChunkBytes, len(data))
			err := addLine("store.put", StorePutParams{
				Digest: dig,
				Offset: int64(off),
				Data:   base64.StdEncoding.EncodeToString(data[off:end]),
				Last:   end == len(data),
			})
			if err != nil {
				return res, err
			}
			if end == len(data) {
				break
			}
		}
	}
	if err := addLine("fleet.complete", FleetCompleteParams{
		Worker: worker, Lease: lease, Key: work.Key, Manifest: string(manifest),
	}); err != nil {
		return res, err
	}
	respBody, err := c.postBody(ctx, body.Bytes())
	if err != nil {
		return res, err
	}
	defer respBody.Close()
	sc := newLineScanner(respBody)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return res, err
			}
			return res, fmt.Errorf("rpc: fleet push: %d of %d replies", i, n)
		}
		// Upload replies are StorePutResult; only the final line is the
		// completion. Any error reply aborts the push.
		if i == n-1 {
			err = decodeResponse(sc.Bytes(), &res)
		} else {
			err = decodeResponse(sc.Bytes(), nil)
		}
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunWorker is cmd/serve's worker mode: register with the coordinator,
// then loop claim → compute → push until ctx is cancelled or the
// coordinator closes. Cancellation is a drain, not an abort: the
// in-flight unit finishes, pushes, and only then does the loop exit —
// which is why the compute half runs on context.Background(). Returns
// nil on a clean drain (cancelled, coordinator closed); any other
// transport or protocol failure is returned as the error.
func RunWorker(ctx context.Context, c *Client, info Implementation, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg, err := c.FleetRegister(ctx, info)
	if err != nil {
		return fmt.Errorf("rpc: fleet register: %w", err)
	}
	heartbeat := time.Duration(reg.HeartbeatMs) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	wait := time.Duration(reg.MaxWaitMs) * time.Millisecond
	logf("worker %s: registered (lease %dms, heartbeat %s)", reg.Worker, reg.LeaseMs, heartbeat)
	units := 0
	for {
		claim, err := c.FleetClaim(ctx, reg.Worker, wait)
		if err != nil {
			if ctx.Err() != nil {
				logf("worker %s: draining after %d unit(s)", reg.Worker, units)
				return nil
			}
			var re *Error
			if errors.As(err, &re) && re.Code == CodeShuttingDown {
				logf("worker %s: coordinator shutting down; drained after %d unit(s)", reg.Worker, units)
				return nil
			}
			return fmt.Errorf("rpc: fleet claim: %w", err)
		}
		if claim.Closed {
			logf("worker %s: coordinator closed; drained after %d unit(s)", reg.Worker, units)
			return nil
		}
		if claim.Unit == nil {
			if ctx.Err() != nil {
				logf("worker %s: draining after %d unit(s)", reg.Worker, units)
				return nil
			}
			continue
		}
		runClaimedUnit(c, reg.Worker, claim, heartbeat, logf)
		units++
	}
}

// runClaimedUnit computes and delivers one claimed unit, heartbeating
// its lease throughout. Deliberately context-free: once a unit is
// claimed the worker finishes it even while draining (the coordinator
// side is also covered either way — an undelivered lease expires and
// re-queues).
func runClaimedUnit(c *Client, worker string, claim FleetClaimResult, heartbeat time.Duration, logf func(string, ...any)) {
	work := *claim.Unit
	done := make(chan struct{})
	defer close(done)
	go func() {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := c.FleetHeartbeat(context.Background(), worker, claim.Lease); err != nil {
					// Lease gone (expired or unit completed elsewhere). Keep
					// computing: a verified late push is still accepted.
					return
				}
			}
		}
	}()
	files, err := core.ComputeUnitFiles(work)
	if err != nil {
		logf("worker %s: unit %s failed: %v", worker, work.Key, err)
		if _, nerr := c.FleetNack(context.Background(), worker, claim.Lease, err.Error()); nerr != nil {
			logf("worker %s: nack failed: %v", worker, nerr)
		}
		return
	}
	res, err := c.PushUnit(context.Background(), worker, claim.Lease, work, files)
	if err != nil {
		// Push failures (daemon gone, artifact rejected) are the
		// coordinator's to recover: the lease expires and re-queues.
		logf("worker %s: unit %s push failed: %v", worker, work.Key, err)
		return
	}
	switch {
	case res.Duplicate:
		logf("worker %s: unit %s already completed elsewhere", worker, work.Key)
	default:
		logf("worker %s: unit %s completed (%s/%s)", worker, work.Key, work.Env, work.App)
	}
}
