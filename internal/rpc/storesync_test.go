package rpc

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"cloudhpc/internal/core"
	"cloudhpc/internal/store"
)

// newSyncHub starts an HTTP daemon over a fresh in-memory result store
// and returns the hub's backing store plus a StorePeer dialing it — the
// full wire path cli.ServeSync takes, minus the flags.
func newSyncHub(t *testing.T) (*store.Memory, StorePeer) {
	t.Helper()
	bs := store.NewMemory()
	srv := &Server{
		Runner: &core.Runner{Store: core.NewResultStore(bs)},
		Drain:  DrainCancel,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})
	return bs, StorePeer{C: &Client{URL: ts.URL}}
}

// TestStoreSyncOverHTTP drives store.Push and store.Pull through the
// wire peer: a local store's content lands on the hub blob-for-blob and
// ref-for-ref, a second local store pulls the union back, and re-syncing
// the converged pair transfers zero blobs.
func TestStoreSyncOverHTTP(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	hub, peer := newSyncHub(t)

	local := store.NewMemory()
	var want [][]byte
	for _, content := range []string{"alpha result", "beta result", "gamma result"} {
		want = append(want, []byte(content))
		d, err := local.Put([]byte(content))
		if err != nil {
			t.Fatal(err)
		}
		if err := local.SetRef("oras/tag/study/"+content[:5], d); err != nil {
			t.Fatal(err)
		}
	}

	st, err := store.Push(ctx, local, peer)
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if st.BlobsSent != 3 || st.RefsApplied != 3 {
		t.Fatalf("push stats %+v, want 3 blobs 3 refs", st)
	}
	for _, content := range want {
		d := store.DigestOf(content)
		got, err := hub.Get(d)
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("hub blob %s: %q %v", d, got, err)
		}
	}
	if got, want := len(hub.Refs()), 3; got != want {
		t.Fatalf("hub refs = %d, want %d", got, want)
	}

	// A second branch pulls the union down over the same wire.
	other := store.NewMemory()
	st, err = store.Pull(ctx, other, peer)
	if err != nil {
		t.Fatalf("pull: %v", err)
	}
	if st.BlobsSent != 3 || st.RefsApplied != 3 {
		t.Fatalf("pull stats %+v, want 3 blobs 3 refs", st)
	}
	for _, content := range want {
		got, err := other.Get(store.DigestOf(content))
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("pulled blob: %q %v", got, err)
		}
	}

	// Converged: both directions are free now.
	for name, resync := range map[string]func() (store.SyncStats, error){
		"push": func() (store.SyncStats, error) { return store.Push(ctx, local, peer) },
		"pull": func() (store.SyncStats, error) { return store.Pull(ctx, other, peer) },
	} {
		st, err := resync()
		if err != nil {
			t.Fatalf("%s re-sync: %v", name, err)
		}
		if st != (store.SyncStats{}) {
			t.Fatalf("%s re-sync of converged stores moved %+v, want zeros", name, st)
		}
	}
}

// TestStoreSyncChunksLargeBlobs round-trips a blob larger than two
// chunk payloads, so both the upload staging (multiple store.put lines
// in one POST) and the download loop (multiple store.fetch calls until
// EOF) exercise their multi-chunk paths.
func TestStoreSyncChunksLargeBlobs(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	hub, peer := newSyncHub(t)

	big := make([]byte, 2*syncChunkBytes+12345)
	for i := range big {
		big[i] = byte(i*31 + i>>9)
	}
	d, err := peer.Put(ctx, big)
	if err != nil {
		t.Fatalf("chunked put: %v", err)
	}
	if d != store.DigestOf(big) {
		t.Fatalf("put returned %s, want %s", d, store.DigestOf(big))
	}
	got, err := hub.Get(d)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("hub holds %d bytes (err %v), want %d intact", len(got), err, len(big))
	}

	back, err := peer.Fetch(ctx, d)
	if err != nil {
		t.Fatalf("chunked fetch: %v", err)
	}
	if !bytes.Equal(back, big) {
		t.Fatalf("fetched %d bytes, differ from the %d uploaded", len(back), len(big))
	}
}

// TestStoreSyncRejectsLies: content that does not hash to its declared
// digest must be refused at arrival, and a fetch of an unknown digest
// must error rather than hang the chunk loop.
func TestStoreSyncRejectsLies(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	hub, peer := newSyncHub(t)

	bogus := store.DigestOf([]byte("claimed"))
	err := peer.C.call(ctx, "store.put", StorePutParams{
		Digest: bogus,
		Data:   "bm90IHRoZSBjbGFpbWVkIGNvbnRlbnQ=", // "not the claimed content"
		Last:   true,
	}, nil)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("lying upload: %v, want invalid-params error", err)
	}
	if hub.Len() != 0 {
		t.Fatal("hub stored content that does not hash to its name")
	}

	if _, err := peer.Fetch(ctx, store.DigestOf([]byte("never uploaded"))); err == nil {
		t.Fatal("fetch of unknown digest succeeded")
	}

	// Refs pointing at absent blobs are skipped, not applied.
	applied, err := peer.SetRefs(ctx, map[string]string{"oras/tag/study/ghost": bogus})
	if err != nil {
		t.Fatalf("refs: %v", err)
	}
	if applied != 0 || len(hub.Refs()) != 0 {
		t.Fatalf("dangling ref applied (applied=%d refs=%v)", applied, hub.Refs())
	}
}

// TestStoreMethodsWithoutStore: a daemon started without -store has no
// sync surface — every store.* verb answers CodeNoStore and initialize
// advertises store:false.
func TestStoreMethodsWithoutStore(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	srv := &Server{Drain: DrainCancel}
	if srv.hasStore() {
		t.Fatal("store-less server claims a store capability")
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})
	peer := StorePeer{C: &Client{URL: ts.URL}}
	_, err := peer.Inventory(ctx)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeNoStore {
		t.Fatalf("inventory on store-less daemon: %v, want code %d", err, CodeNoStore)
	}
	if _, err := store.Push(ctx, store.NewMemory(), peer); err == nil {
		t.Fatal("push into a store-less daemon succeeded")
	}
}
