package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cloudhpc/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden transcripts from the live protocol")

// The protocol conformance suite: each scenario drives a scripted client
// conversation against a live Server over in-memory pipes and records
// the exact wire traffic — every request line, every response and
// notification line, and every connection lifecycle step — as a
// transcript compared against a golden file in testdata/. The studies
// run with one worker, so the event stream (and therefore the whole
// transcript) is deterministic; regenerate after an intentional
// protocol change with
//
//	go test ./internal/rpc -run TestTranscript -update
//
// Each scenario uses a distinct seed so the scenarios stay independent,
// and transcriptServer pins workers through a dataset-affecting
// Configure rather than a spec line: that bypasses the runner's
// process-global memory tier (see core.Runner.Configure), so a repeat
// run in one process (-count=N) recomputes and transcribes identically
// instead of hitting the study cache with a different event stream.

// transcript accumulates the scripted conversation, safe for the
// forwarder-driven interleavings of multi-connection scenarios.
type transcript struct {
	t  *testing.T
	mu sync.Mutex
	b  strings.Builder
}

func (tr *transcript) logf(format string, args ...any) {
	tr.mu.Lock()
	fmt.Fprintf(&tr.b, format+"\n", args...)
	tr.mu.Unlock()
}

func (tr *transcript) String() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.b.String()
}

// scriptConn is one scripted client connection served by ServeConn over
// an io.Pipe pair.
type scriptConn struct {
	t    *testing.T
	tr   *transcript
	name string
	in   *io.PipeWriter
	outR *io.PipeReader
	out  *bufio.Reader
	done chan error
}

func (tr *transcript) connect(srv *Server, name string) *scriptConn {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	c := &scriptConn{
		t: tr.t, tr: tr, name: name,
		in: inW, outR: outR, out: bufio.NewReader(outR),
		done: make(chan error, 1),
	}
	go func() {
		err := srv.ServeConn(context.Background(), inR, outW)
		outW.Close()
		c.done <- err
	}()
	tr.logf("-- %s connected", name)
	return c
}

func (c *scriptConn) send(line string) {
	c.t.Helper()
	c.tr.logf("%s >> %s", c.name, line)
	if _, err := io.WriteString(c.in, line+"\n"); err != nil {
		c.t.Fatalf("%s: send: %v", c.name, err)
	}
}

func (c *scriptConn) recv() string {
	c.t.Helper()
	line, err := c.out.ReadString('\n')
	if err != nil {
		c.t.Fatalf("%s: recv: %v (partial %q)\ntranscript so far:\n%s", c.name, err, line, c.tr.String())
	}
	line = strings.TrimSuffix(line, "\n")
	c.tr.logf("%s << %s", c.name, line)
	return line
}

func (c *scriptConn) recvN(n int) []string {
	c.t.Helper()
	lines := make([]string, n)
	for i := range lines {
		lines[i] = c.recv()
	}
	return lines
}

// drop severs the connection abruptly — both pipe halves die at once,
// the disconnect the reattach machinery exists for.
func (c *scriptConn) drop() {
	c.t.Helper()
	c.outR.Close()
	c.in.Close()
	<-c.done
	c.tr.logf("-- %s dropped", c.name)
}

// finish ends the conversation cleanly and waits for the server side to
// unwind.
func (c *scriptConn) finish() {
	c.t.Helper()
	c.in.Close()
	if err := <-c.done; err != nil {
		c.t.Fatalf("%s: serve: %v", c.name, err)
	}
	c.outR.Close()
	c.tr.logf("-- %s closed", c.name)
}

// eventSeq extracts the sequence number from a study.event notification
// line (0 for non-notification lines).
func eventSeq(t *testing.T, line string) uint64 {
	t.Helper()
	var note struct {
		Method string     `json:"method"`
		Params StudyEvent `json:"params"`
	}
	if err := json.Unmarshal([]byte(line), &note); err != nil {
		t.Fatalf("bad wire line %q: %v", line, err)
	}
	if note.Method != "study.event" {
		return 0
	}
	return note.Params.Seq
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden transcript (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("transcript diverges from %s at line %d:\n got: %s\nwant: %s\n\nfull transcript:\n%s", path, i+1, g, w, got)
		}
	}
}

const initLine = `{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"protocolVersion":"1","client":{"name":"conformance","version":"test"}}}`

// transcriptServer builds the server under test: single-worker studies
// for a deterministic event order, pinned via Configure (not a spec
// line) so every submit recomputes instead of hitting the process-global
// study cache — see the package comment.
func transcriptServer() *Server {
	return &Server{
		Runner: &core.Runner{Configure: func(o *core.Options) { o.Workers = 1 }},
		Info:   Implementation{Name: "cloudhpc-serve", Version: "test"},
	}
}

// TestTranscriptHappyPath pins the full life of one study over one
// connection: handshake, submit, subscribe from the beginning, the
// complete event stream, a terminal progress poll, a cancel that arrives
// too late to matter, and a graceful shutdown.
func TestTranscriptHappyPath(t *testing.T) {
	tr := &transcript{t: t}
	srv := transcriptServer()
	c := tr.connect(srv, "C1")
	c.send(initLine)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":2,"method":"study.submit","params":{"spec":"seed 880001\nenvs google-gke-cpu\nscales 2\niterations 1\n"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":3,"method":"study.subscribe","params":{"session":"S1"}}`)
	// Response, then study-started, env-started, env-finished, progress,
	// study-finished.
	lines := c.recvN(6)
	c.send(`{"jsonrpc":"2.0","id":4,"method":"study.progress","params":{"session":"S1"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":5,"method":"study.cancel","params":{"session":"S1"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":6,"method":"shutdown"}`)
	c.recv()
	c.finish()

	for i, line := range lines[1:] {
		if seq := eventSeq(t, line); seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d (sequence numbers are 1-based and contiguous)", i, seq, i+1)
		}
	}
	checkGolden(t, "happy.txt", tr.String())
}

// TestTranscriptCancelMidStudy pins cooperative cancellation while an
// environment is mid-flight, plus live unsubscribe/resubscribe-from-
// cursor: the big single-environment spec emits nothing between
// env-started and the cancellation's own events, so the stream around
// the cancel is deterministic. The cancel acknowledgement is written
// before the cancellation is triggered, so it always precedes the
// failure events it provokes.
func TestTranscriptCancelMidStudy(t *testing.T) {
	tr := &transcript{t: t}
	srv := transcriptServer()
	c := tr.connect(srv, "C1")
	c.send(initLine)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":2,"method":"study.submit","params":{"spec":"seed 880002\nenvs google-gke-cpu\nscales 2 4 8 16 32 64 128 256\niterations 1000\n"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":3,"method":"study.subscribe","params":{"session":"S1"}}`)
	c.recvN(3) // response, study-started, env-started — then the stream goes quiet
	c.send(`{"jsonrpc":"2.0","id":4,"method":"study.unsubscribe","params":{"session":"S1"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":5,"method":"study.subscribe","params":{"session":"S1","after":2}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":6,"method":"study.cancel","params":{"session":"S1"}}`)
	c.recvN(4) // ack, then env-failed, progress, study-failed
	c.send(`{"jsonrpc":"2.0","id":7,"method":"study.progress","params":{"session":"S1"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":8,"method":"shutdown"}`)
	c.recv()
	c.finish()
	checkGolden(t, "cancel.txt", tr.String())
}

// TestTranscriptReattach pins the acceptance scenario: a client reads a
// prefix of the stream and drops mid-study; a second client submits the
// same spec (joining the same session, created=false), subscribes after
// the first client's last sequence number, and receives exactly the rest
// of the stream with nothing missed.
func TestTranscriptReattach(t *testing.T) {
	tr := &transcript{t: t}
	srv := transcriptServer()
	const submitLine = `{"jsonrpc":"2.0","id":2,"method":"study.submit","params":{"spec":"seed 880003\nenvs aws-eks-cpu google-gke-cpu\nscales 2 4\niterations 2\n"}}`

	c1 := tr.connect(srv, "C1")
	c1.send(initLine)
	c1.recv()
	c1.send(submitLine)
	c1.recv()
	c1.send(`{"jsonrpc":"2.0","id":3,"method":"study.subscribe","params":{"session":"S1"}}`)
	// Response plus the first four events (through the first env's
	// progress), then the connection dies mid-stream.
	prefix := c1.recvN(5)
	c1.drop()

	c2 := tr.connect(srv, "C2")
	c2.send(initLine)
	c2.recv()
	c2.send(submitLine)
	c2.recv()
	c2.send(`{"jsonrpc":"2.0","id":3,"method":"study.subscribe","params":{"session":"S1","after":4}}`)
	tail := c2.recvN(5) // response plus events 5..8
	c2.send(`{"jsonrpc":"2.0","id":4,"method":"study.progress","params":{"session":"S1"}}`)
	c2.recv()
	c2.send(`{"jsonrpc":"2.0","id":5,"method":"shutdown"}`)
	c2.recv()
	c2.finish()

	// The cursor arithmetic, independent of the golden bytes: C1 saw
	// seqs 1..4, C2 resumed after 4 and saw 5..8 — one contiguous stream.
	for i, line := range append(append([]string(nil), prefix[1:]...), tail[1:]...) {
		if seq := eventSeq(t, line); seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d (reattach must continue the sequence exactly)", i, seq, i+1)
		}
	}
	checkGolden(t, "reattach.txt", tr.String())
}

// TestTranscriptMalformed pins the error surface: unparseable lines,
// non-2.0 requests, requests before initialize, a rejected protocol
// version, unknown methods, bad specs, bad params, and unknown sessions
// each map to their JSON-RPC error code.
func TestTranscriptMalformed(t *testing.T) {
	tr := &transcript{t: t}
	srv := transcriptServer()
	c := tr.connect(srv, "C1")
	c.send(`this is not json`)
	c.recv()
	c.send(`{"jsonrpc":"1.0","id":1,"method":"initialize"}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":2,"method":"study.submit","params":{"spec":"seed 1"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":3,"method":"initialize","params":{"protocolVersion":"99"}}`)
	c.recv()
	c.send(initLine)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":4,"method":"study.levitate"}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":5,"method":"study.submit","params":{"spec":"bogus directive\n"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":6,"method":"study.submit","params":{}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":7,"method":"study.subscribe","params":{"session":"S404"}}`)
	c.recv()
	c.send(`{"jsonrpc":"2.0","id":8,"method":"study.cancel","params":"not an object"}`)
	c.recv()
	c.finish()
	checkGolden(t, "malformed.txt", tr.String())
}
