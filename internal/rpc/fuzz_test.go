package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/store"
)

// FuzzRPCDecode throws arbitrary bytes at the per-line framing and
// arbitrary text at the study.submit spec payload. Whatever arrives, the
// server must not panic, must keep the connection's framing intact, and
// every line it writes back must be a well-formed JSON-RPC 2.0 message.
// The conversation always ends with a shutdown under the cancel drain
// policy, so a fuzzed line that manages to start a real study is
// cancelled rather than executed to completion.
func FuzzRPCDecode(f *testing.F) {
	f.Add(`{"jsonrpc":"2.0","id":7,"method":"study.progress","params":{"session":"S1"}}`, "seed 1\nenvs google-gke-cpu\nscales 2\niterations 1\nworkers 1\n")
	f.Add(`{"jsonrpc":"2.0","id":8,"method":"study.subscribe","params":{"session":"S1","after":2}}`, "seed 2\n")
	f.Add(`{"jsonrpc":"2.0","method":"study.cancel","params":{"session":"S1"}}`, "bogus directive")
	f.Add(`{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"protocolVersion":"99"}}`, "")
	f.Add("\x00\x01\x02{}[]", "iterations 0")
	f.Add(`{"jsonrpc":"2.0","id":[1,2],"method":"shutdown"}`, "envs *")
	f.Add(`{"id":3}`, strings.Repeat("#", 100))
	f.Add(`{"jsonrpc":"2.0","id":9,"method":"study.submit","params":{"spec":9}}`, "seed 3\nseed 4")
	f.Fuzz(func(t *testing.T, line, spec string) {
		srv := &Server{Drain: DrainCancel}
		params, err := json.Marshal(SubmitParams{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		submitLine, err := json.Marshal(request{JSONRPC: "2.0", ID: json.RawMessage(`2`), Method: "study.submit", Params: params})
		if err != nil {
			t.Fatal(err)
		}
		var in bytes.Buffer
		in.WriteString(initLine + "\n")
		in.Write(append(submitLine, '\n'))
		in.WriteString(line + "\n")
		in.WriteString(`{"jsonrpc":"2.0","id":99,"method":"shutdown"}` + "\n")

		var out bytes.Buffer
		// ServeConn returns only after every forwarder has unwound, so
		// reading out afterwards is race-free.
		if err := srv.ServeConn(context.Background(), &in, &out); err != nil && !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("serve: %v", err)
		}
		// A fuzzed shutdown line can end the connection before the
		// scripted one; drain regardless so no study outlives the test.
		srv.Shutdown()

		for _, ln := range bytes.Split(out.Bytes(), []byte("\n")) {
			ln = bytes.TrimSpace(ln)
			if len(ln) == 0 {
				continue
			}
			var msg struct {
				JSONRPC string          `json:"jsonrpc"`
				Method  string          `json:"method"`
				ID      json.RawMessage `json:"id"`
				Result  json.RawMessage `json:"result"`
				Error   *Error          `json:"error"`
			}
			if err := json.Unmarshal(ln, &msg); err != nil {
				t.Fatalf("server wrote an unparseable line %q: %v", ln, err)
			}
			if msg.JSONRPC != "2.0" {
				t.Fatalf("server wrote a non-2.0 line %q", ln)
			}
			if msg.Method == "" && msg.Result == nil && msg.Error == nil {
				t.Fatalf("server wrote a line that is neither response nor notification: %q", ln)
			}
		}
	})
}

// FuzzSyncDecode throws arbitrary bytes at the store.* wire handlers:
// whatever a hostile sync peer sends — malformed digests, bad base64,
// impossible offsets, ref batches at phantom blobs — the daemon must
// not panic, must never store content that does not hash to its name,
// and every reply line must be well-formed JSON-RPC 2.0.
// FuzzFleetDecode throws arbitrary bytes at the fleet.* wire handlers:
// whatever a hostile or confused worker sends — phantom workers and
// leases, malformed digests, bad protocol versions, claims with absurd
// waits — the daemon must not panic, must never tag an artifact that
// fails unit verification, and every reply line must be well-formed
// JSON-RPC 2.0. The coordinator's claim long-poll is capped tiny so a
// fuzzed claim cannot stall the serial request loop.
func FuzzFleetDecode(f *testing.F) {
	f.Add(`{"jsonrpc":"2.0","id":5,"method":"fleet.register","params":{"protocolVersion":"1","worker":{"name":"w","version":"1"}}}`)
	f.Add(`{"jsonrpc":"2.0","id":6,"method":"fleet.register","params":{"protocolVersion":"99"}}`)
	f.Add(`{"jsonrpc":"2.0","id":7,"method":"fleet.claim","params":{"worker":"W1","waitMs":9007199254740993}}`)
	f.Add(`{"jsonrpc":"2.0","id":8,"method":"fleet.claim","params":{"worker":"","waitMs":-5}}`)
	f.Add(`{"jsonrpc":"2.0","id":9,"method":"fleet.heartbeat","params":{"worker":"W1","lease":"L1"}}`)
	f.Add(`{"jsonrpc":"2.0","id":10,"method":"fleet.complete","params":{"worker":"W1","lease":"L1","key":"k","manifest":"sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"}}`)
	f.Add(`{"jsonrpc":"2.0","id":11,"method":"fleet.complete","params":{"worker":"W1","lease":"L1","key":"","manifest":"../../etc/passwd"}}`)
	f.Add(`{"jsonrpc":"2.0","id":12,"method":"fleet.nack","params":{"worker":7,"lease":[]}}`)
	f.Add(`{"jsonrpc":"2.0","method":"fleet.complete","params":"not an object"}`)
	f.Fuzz(func(t *testing.T, line string) {
		bs := store.NewMemory()
		rs := core.NewResultStore(bs)
		co := fleet.New(fleet.Options{MaxClaimWait: 10 * time.Millisecond}, rs)
		defer co.Close()
		srv := &Server{Drain: DrainCancel, Runner: &core.Runner{Store: rs}, Fleet: co}
		var in bytes.Buffer
		in.WriteString(initLine + "\n")
		in.WriteString(line + "\n")
		in.WriteString(`{"jsonrpc":"2.0","id":99,"method":"shutdown"}` + "\n")

		var out bytes.Buffer
		if err := srv.ServeConn(context.Background(), &in, &out); err != nil && !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("serve: %v", err)
		}
		srv.Shutdown()

		// No fuzzed completion can plant a unit ref: every accepted unit
		// passes schedule verification, and no real unit was ever computed
		// here — so the ref table must hold no unit/ entries at all.
		for name := range rs.Registry().SyncInventory().Refs {
			if strings.HasPrefix(name, "unit/") {
				t.Fatalf("fuzzed input planted a unit ref %q", name)
			}
		}

		for _, ln := range bytes.Split(out.Bytes(), []byte("\n")) {
			ln = bytes.TrimSpace(ln)
			if len(ln) == 0 {
				continue
			}
			var msg struct {
				JSONRPC string          `json:"jsonrpc"`
				Method  string          `json:"method"`
				ID      json.RawMessage `json:"id"`
				Result  json.RawMessage `json:"result"`
				Error   *Error          `json:"error"`
			}
			if err := json.Unmarshal(ln, &msg); err != nil {
				t.Fatalf("server wrote an unparseable line %q: %v", ln, err)
			}
			if msg.JSONRPC != "2.0" {
				t.Fatalf("server wrote a non-2.0 line %q", ln)
			}
			if msg.Method == "" && msg.Result == nil && msg.Error == nil {
				t.Fatalf("server wrote a line that is neither response nor notification: %q", ln)
			}
		}
	})
}

func FuzzSyncDecode(f *testing.F) {
	f.Add(`{"jsonrpc":"2.0","id":5,"method":"store.inventory"}`)
	f.Add(`{"jsonrpc":"2.0","id":6,"method":"store.fetch","params":{"digest":"sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"}}`)
	f.Add(`{"jsonrpc":"2.0","id":7,"method":"store.fetch","params":{"digest":"../../etc/passwd","offset":-4}}`)
	f.Add(`{"jsonrpc":"2.0","id":8,"method":"store.put","params":{"digest":"sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff","data":"AAAA","last":true}}`)
	f.Add(`{"jsonrpc":"2.0","id":9,"method":"store.put","params":{"digest":"sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff","offset":7,"data":"!!!not base64!!!"}}`)
	f.Add(`{"jsonrpc":"2.0","id":10,"method":"store.refs","params":{"refs":{"":"sha256:00","study/x":"nope"}}}`)
	f.Add(`{"jsonrpc":"2.0","id":11,"method":"store.refs","params":{"refs":7}}`)
	f.Add(`{"jsonrpc":"2.0","method":"store.put","params":{"digest":"sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff","offset":9007199254740993,"data":""}}`)
	f.Fuzz(func(t *testing.T, line string) {
		bs := store.NewMemory()
		srv := &Server{Drain: DrainCancel, Runner: &core.Runner{Store: core.NewResultStore(bs)}}
		var in bytes.Buffer
		in.WriteString(initLine + "\n")
		in.WriteString(line + "\n")
		in.WriteString(`{"jsonrpc":"2.0","id":99,"method":"shutdown"}` + "\n")

		var out bytes.Buffer
		if err := srv.ServeConn(context.Background(), &in, &out); err != nil && !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("serve: %v", err)
		}
		srv.Shutdown()

		// Content addressing must hold whatever got through: every stored
		// blob hashes to its advertised digest.
		for _, d := range bs.Digests() {
			data, err := bs.Get(d)
			if err != nil {
				t.Fatalf("stored blob unreadable: %v", err)
			}
			if store.DigestOf(data) != d {
				t.Fatalf("stored content does not hash to its name %s", d)
			}
		}

		for _, ln := range bytes.Split(out.Bytes(), []byte("\n")) {
			ln = bytes.TrimSpace(ln)
			if len(ln) == 0 {
				continue
			}
			var msg struct {
				JSONRPC string          `json:"jsonrpc"`
				Method  string          `json:"method"`
				ID      json.RawMessage `json:"id"`
				Result  json.RawMessage `json:"result"`
				Error   *Error          `json:"error"`
			}
			if err := json.Unmarshal(ln, &msg); err != nil {
				t.Fatalf("server wrote an unparseable line %q: %v", ln, err)
			}
			if msg.JSONRPC != "2.0" {
				t.Fatalf("server wrote a non-2.0 line %q", ln)
			}
			if msg.Method == "" && msg.Result == nil && msg.Error == nil {
				t.Fatalf("server wrote a line that is neither response nor notification: %q", ln)
			}
		}
	})
}
