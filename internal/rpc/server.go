package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
)

// DefaultServerReplay is the replay-ring bound the server configures on
// every session it starts when Server.Replay is unset. It is wider than
// core.DefaultReplayEvents because reattach-after-disconnect is the
// service's whole point: the window must comfortably hold a full study's
// event stream so a client that reconnects with any cursor misses
// nothing.
const DefaultServerReplay = 4096

// DrainWait and DrainCancel are the shutdown drain policies: wait lets
// every running study finish before shutdown acknowledges; cancel
// cancels them all first and waits only for the cooperative drain.
// Either way sessions end through the normal executor path, so every
// store write stays atomic and the store is consistent on exit.
const (
	DrainWait   = "wait"
	DrainCancel = "cancel"
)

// Server is the study service: a long-lived registry of Runner sessions
// addressed by ID, shared by every connection (stdio or HTTP). Submitting
// a spec whose hash is already registered returns the existing session —
// single-flight at the service layer, on top of the Runner's own — so any
// number of clients submitting the same study observe one execution and
// one event stream. The zero value serves with a default Runner, the
// wait drain policy, and DefaultServerReplay; fields must be set before
// the first connection is served.
type Server struct {
	// Runner executes submitted studies; nil means a zero core.Runner
	// (process-default store). The server copies it and layers an
	// observation-only Configure that widens each session's replay ring
	// to Replay — which keeps the Runner's memory and store tiers (see
	// core.Options.ReplayEvents).
	Runner *core.Runner
	// Drain is the shutdown policy: DrainWait (default) or DrainCancel.
	Drain string
	// Replay overrides the per-session replay-ring bound advertised in
	// the initialize capabilities; 0 means DefaultServerReplay.
	Replay int
	// Logf, when non-nil, receives server diagnostics (and is passed to
	// the Runner when it has no Logf of its own). Nil discards them.
	Logf func(format string, args ...any)
	// Info is the serverInfo reported by initialize; a zero value is
	// filled with the module's name.
	Info Implementation
	// Fleet, when non-nil, serves the fleet.* worker family: remote
	// workers register, claim leased units, and push artifacts back. The
	// same coordinator should be attached to the Runner (Runner.Fleet) so
	// studies offload to it. Shutdown closes the coordinator before
	// draining sessions — blocked offloads fall back to local compute, so
	// the drain always completes.
	Fleet *fleet.Coordinator

	mu       sync.Mutex
	runner   *core.Runner
	byHash   map[string]*studySession
	byID     map[string]*studySession
	nextID   int
	down     bool
	drained  chan struct{}
	shutOnce sync.Once
}

// studySession is one registered execution: the service-layer identity
// (ID, spec hash) around a core.Session.
type studySession struct {
	id   string
	hash string
	sess *core.Session
}

// state derives the session's lifecycle state and terminal error.
func (ss *studySession) state() (string, error) {
	select {
	case <-ss.sess.Done():
	default:
		return "running", nil
	}
	_, err := ss.sess.Wait()
	switch {
	case err == nil:
		return "done", nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled", err
	default:
		return "failed", err
	}
}

func (s *Server) effectiveReplay() int {
	if s.Replay > 0 {
		return s.Replay
	}
	return DefaultServerReplay
}

func (s *Server) drainPolicy() string {
	if s.Drain == DrainCancel {
		return DrainCancel
	}
	return DrainWait
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ensureLocked lazily builds the registry and the server's runner: a
// copy of the user's Runner whose Configure additionally widens each
// session's replay ring. Widening is observation-only, so a Runner that
// had no Configure of its own keeps its memory and store tiers.
func (s *Server) ensureLocked() {
	if s.byID != nil {
		return
	}
	s.byHash = make(map[string]*studySession)
	s.byID = make(map[string]*studySession)
	s.drained = make(chan struct{})
	base := s.Runner
	if base == nil {
		base = &core.Runner{}
	}
	r := *base
	if r.Logf == nil {
		r.Logf = s.Logf
	}
	orig := r.Configure
	replay := s.effectiveReplay()
	r.Configure = func(o *core.Options) {
		if orig != nil {
			orig(o)
		}
		if o.ReplayEvents == 0 {
			o.ReplayEvents = replay
		}
	}
	s.runner = &r
}

// submit registers (or rejoins) the execution of one spec text.
func (s *Server) submit(specText string) (*SubmitResult, *Error) {
	spec, err := core.ParseSpec(specText)
	if err != nil {
		return nil, errf(CodeInvalidParams, "spec: %v", err)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, errf(CodeInvalidParams, "spec: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked()
	if s.down {
		return nil, errf(CodeShuttingDown, "server is shutting down")
	}
	if ss, ok := s.byHash[hash]; ok {
		return &SubmitResult{Session: ss.id, SpecHash: hash, Created: false}, nil
	}
	// Start under s.mu: it only resolves the spec and spawns the
	// execution goroutine, and holding the lock makes submit itself
	// single-flight — two clients racing the same hash cannot both
	// register a session. The session's context is the server's (not the
	// connection's): studies outlive the connections that submitted them.
	sess, err := s.runner.Start(context.Background(), spec)
	if err != nil {
		return nil, errf(CodeInvalidParams, "spec: %v", err)
	}
	// Retain the replay ring from the start: service clients attach,
	// detach, and reattach at will, and a cursor must stay resumable even
	// while nobody is subscribed.
	sess.Retain()
	s.nextID++
	ss := &studySession{id: fmt.Sprintf("S%d", s.nextID), hash: hash, sess: sess}
	s.byHash[hash] = ss
	s.byID[ss.id] = ss
	s.logf("rpc: session %s started (spec %s)", ss.id, hash[:12])
	return &SubmitResult{Session: ss.id, SpecHash: hash, Created: true}, nil
}

// lookup resolves a session ID.
func (s *Server) lookup(id string) (*studySession, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked()
	ss, ok := s.byID[id]
	if !ok {
		return nil, errf(CodeUnknownSession, "unknown session %q", id)
	}
	return ss, nil
}

// Shutdown drains the server per its policy and returns when every
// registered session has completed. It is idempotent and safe to call
// concurrently (from the shutdown RPC and a signal handler at once);
// every caller blocks until the one drain finishes. New submissions are
// refused with CodeShuttingDown the moment it is called.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.ensureLocked()
	s.down = true
	sessions := make([]*studySession, 0, len(s.byID))
	for _, ss := range s.byID {
		sessions = append(sessions, ss)
	}
	drained := s.drained
	s.mu.Unlock()
	s.shutOnce.Do(func() {
		// Close the fleet first: every parked worker claim returns closed,
		// and every study blocked on an offload falls back to local compute
		// — a draining daemon never waits on remote workers.
		if s.Fleet != nil {
			s.Fleet.Close()
		}
		if s.drainPolicy() == DrainCancel {
			for _, ss := range sessions {
				ss.sess.Cancel()
			}
		}
		for _, ss := range sessions {
			<-ss.sess.Done()
		}
		s.logf("rpc: drained %d session(s) (%s policy)", len(sessions), s.drainPolicy())
		close(drained)
	})
	<-drained
}

// Drained returns a channel closed when a Shutdown drain has completed —
// the daemon main selects on it (against its signal handler) to know
// when an RPC-initiated shutdown should exit the process.
func (s *Server) Drained() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocked()
	return s.drained
}

// Health snapshots the server for GET /healthz and the shutdown reply:
// session tallies by state, whether a store is attached, and — with a
// coordinator attached — the fleet's lease-table counters.
func (s *Server) Health() Health {
	s.mu.Lock()
	s.ensureLocked()
	h := Health{Status: "ok", Store: s.hasStore(), Server: s.Info}
	if s.down {
		h.Status = "draining"
	}
	sessions := make([]*studySession, 0, len(s.byID))
	for _, ss := range s.byID {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	if h.Server.Name == "" {
		h.Server.Name = "cloudhpc-serve"
	}
	h.Sessions.Total = len(sessions)
	for _, ss := range sessions {
		// state() may call Wait on a finished session; never under s.mu.
		switch state, _ := ss.state(); state {
		case "running":
			h.Sessions.Running++
		case "done":
			h.Sessions.Done++
		case "cancelled":
			h.Sessions.Cancelled++
		case "failed":
			h.Sessions.Failed++
		}
	}
	if s.Fleet != nil {
		st := s.Fleet.Stats()
		h.Fleet = &st
	}
	return h
}
