// Package rpc puts core.Runner sessions on the wire: a line-oriented
// JSON-RPC 2.0 protocol served over stdio (full duplex, one message per
// line) and streamable HTTP (one POST per request batch, notifications
// streamed on the response). The Server is the long-lived daemon side —
// a session registry that single-flights study submissions by spec hash
// and forwards core.Session event streams as notifications, with
// reattach-after-disconnect via the sessions' sequence-numbered replay
// ring. The Client is the matching minimal HTTP client the CLI's client
// mode and the CI smoke ride.
//
// The protocol surface (see ARCHITECTURE.md "Study service" for the
// full table):
//
//	initialize        capability/version handshake (required first on stdio)
//	study.submit      spec text in, session ID out; single-flight by spec hash
//	study.subscribe   event stream as study.event notifications, resuming
//	                  after a sequence cursor; the response reports the
//	                  events the cursor can no longer reach (missed)
//	study.unsubscribe stop this connection's stream for a session
//	study.progress    plan completion counters and session state
//	study.cancel      cooperative cancellation
//	store.inventory   the result store's sync manifest: digests + refs
//	store.fetch       one blob chunk out (base64; loop offsets until eof)
//	store.put         one blob chunk in (chunks of one digest arrive in
//	                  order on one connection; last=true verifies + stores)
//	store.refs        reconcile a ref batch last-writer-wins
//	shutdown          graceful drain (per the server's policy), then quit
//
// The store.* family is the wire form of internal/store's digest-exchange
// sync (store.Peer): a running daemon is also a sync hub, and the same
// verbs are what a future remote unit worker needs to claim and return
// units.
package rpc

import (
	"encoding/json"
	"fmt"

	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
)

// ProtocolVersion is the protocol revision this server and client speak.
// initialize negotiates it: a client requesting an unsupported version
// is refused with CodeInvalidParams and the supported list.
const ProtocolVersion = "1"

// maxLineBytes bounds one framed message. Untrusted callers submit spec
// text in-band, so the bound is generous for specs but small enough that
// a hostile line cannot balloon server memory.
const maxLineBytes = 4 << 20

// JSON-RPC 2.0 error codes: the spec-defined range plus this protocol's
// server-defined codes.
const (
	CodeParse          = -32700 // line is not valid JSON
	CodeInvalidRequest = -32600 // not a JSON-RPC 2.0 request object
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeInternal       = -32603
	CodeUnknownSession = -32001 // session ID not in the registry
	CodeNotInitialized = -32002 // request before initialize (stdio)
	CodeShuttingDown   = -32003 // submit after shutdown began
	CodeNoStore        = -32004 // store.* method on a daemon without a result store
	CodeNoFleet        = -32005 // fleet.* method on a daemon without a coordinator
	CodeUnknownWorker  = -32006 // worker ID not registered (fleet.register first)
	CodeUnknownLease   = -32007 // lease expired, completed, or never existed
	CodeBadArtifact    = -32008 // fleet.complete artifact failed verification
)

// request is one incoming JSON-RPC 2.0 message. A missing ID marks a
// client notification: it is executed but never answered.
type request struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// response is one outgoing reply. Exactly one of Result and Error is
// set; ID echoes the request's (null for unparseable requests).
type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// notification is one outgoing server-initiated message (study.event).
type notification struct {
	JSONRPC string `json:"jsonrpc"`
	Method  string `json:"method"`
	Params  any    `json:"params"`
}

// Error is a JSON-RPC 2.0 error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
	Data    any    `json:"data,omitempty"`
}

func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Implementation identifies one endpoint in the initialize handshake.
type Implementation struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// InitializeParams is the client half of the handshake.
type InitializeParams struct {
	ProtocolVersion string         `json:"protocolVersion"`
	Client          Implementation `json:"client,omitempty"`
}

// InitializeResult is the server half: the negotiated version and what
// the study surface supports.
type InitializeResult struct {
	ProtocolVersion string         `json:"protocolVersion"`
	Capabilities    Capabilities   `json:"capabilities"`
	ServerInfo      Implementation `json:"serverInfo"`
}

// Capabilities advertises the study surface, whether the store.* sync
// family is available (false when the daemon runs without a result
// store), whether the fleet.* worker family is available (a coordinator
// is attached), and the server's drain policy for shutdown.
type Capabilities struct {
	Study StudyCapabilities `json:"study"`
	Store bool              `json:"store"`
	Fleet bool              `json:"fleet"`
	Drain string            `json:"drain"`
}

// StudyCapabilities describes the study method family. Replay is the
// per-session replay-ring bound: a reattaching subscriber whose cursor
// is within the last Replay events misses nothing.
type StudyCapabilities struct {
	Subscribe    bool `json:"subscribe"`
	Replay       int  `json:"replay"`
	Cancel       bool `json:"cancel"`
	SingleFlight bool `json:"singleFlight"`
}

// SubmitParams carries a study spec in the spec-file syntax
// (core.ParseSpec) — the same text a -spec file holds.
type SubmitParams struct {
	Spec string `json:"spec"`
}

// SubmitResult names the session executing the submitted spec. Created
// is false when the spec hash was already registered: the caller shares
// the existing execution (single-flight), and its session ID.
type SubmitResult struct {
	Session  string `json:"session"`
	SpecHash string `json:"specHash"`
	Created  bool   `json:"created"`
}

// SubscribeParams attaches this connection to a session's event stream,
// resuming after the After sequence cursor (0 = from the beginning).
type SubscribeParams struct {
	Session string `json:"session"`
	After   uint64 `json:"after,omitempty"`
}

// SubscribeResult acknowledges the attach. Missed counts the events
// after the cursor that were evicted from the bounded replay ring before
// the attach and can never be delivered; 0 means the stream that follows
// is exactly the continuation of what the cursor saw.
type SubscribeResult struct {
	Session string `json:"session"`
	After   uint64 `json:"after"`
	Missed  uint64 `json:"missed"`
}

// SessionParams names a session (study.progress, study.cancel,
// study.unsubscribe).
type SessionParams struct {
	Session string `json:"session"`
}

// UnsubscribeResult reports whether a stream was actually detached.
type UnsubscribeResult struct {
	Session      string `json:"session"`
	Unsubscribed bool   `json:"unsubscribed"`
}

// ProgressResult is a session's plan completion and lifecycle state:
// "running", "done", "cancelled", or "failed" (Err carries the failure).
// Seq is the stream's sequence high-water mark, Lost the events evicted
// from the replay ring, Dropped the events lost to stalled subscribers.
type ProgressResult struct {
	Session string `json:"session"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Seq     uint64 `json:"seq"`
	Lost    uint64 `json:"lost"`
	Dropped int64  `json:"dropped"`
	Err     string `json:"err,omitempty"`
}

// CancelResult acknowledges a cancellation request. Cancelled is false
// when the session had already completed.
type CancelResult struct {
	Session   string `json:"session"`
	Cancelled bool   `json:"cancelled"`
}

// ShutdownResult acknowledges a graceful shutdown: it is sent after the
// drain completes, so receiving it means every session has finished (or
// was cancelled, per the drain policy) and the store is quiescent.
// Health is the server's final health report — the same structure GET
// /healthz serves — snapshotted post-drain, so `serve -stop` can print
// the daemon's closing tallies.
type ShutdownResult struct {
	OK     bool    `json:"ok"`
	Health *Health `json:"health,omitempty"`
}

// StoreInventoryResult is store.inventory's reply: the result store's
// sync manifest — every servable blob digest plus the ref set (refs
// whose target blob is unservable are withheld; see
// store.TakeInventory).
type StoreInventoryResult struct {
	Digests []string          `json:"digests"`
	Refs    map[string]string `json:"refs"`
}

// StoreFetchParams asks for one chunk of a blob, starting at Offset.
// The caller loops, advancing Offset by the bytes received, until EOF.
type StoreFetchParams struct {
	Digest string `json:"digest"`
	Offset int64  `json:"offset,omitempty"`
}

// StoreFetchResult carries one blob chunk: up to syncChunkBytes of
// payload, base64-encoded so a chunk line stays under the framing cap.
// EOF marks the chunk that reaches the end of the blob.
type StoreFetchResult struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
	Offset int64  `json:"offset"`
	Data   string `json:"data"`
	EOF    bool   `json:"eof"`
}

// StorePutParams carries one inbound blob chunk. Chunks of one digest
// must arrive in offset order on one connection (the server stages them
// per connection); Last finalizes the upload — the assembled bytes are
// verified against Digest before anything is stored, so a store can
// never be handed content that does not match its name.
type StorePutParams struct {
	Digest string `json:"digest"`
	Offset int64  `json:"offset,omitempty"`
	Data   string `json:"data,omitempty"`
	Last   bool   `json:"last,omitempty"`
}

// StorePutResult acknowledges a chunk. Stored is true once the blob is
// durably in the store — only on the Last chunk's reply, after the
// assembled content verified against its digest.
type StorePutResult struct {
	Digest string `json:"digest"`
	Stored bool   `json:"stored"`
}

// StoreRefsParams is a ref batch to reconcile last-writer-wins: each
// name is pointed at its digest, overwriting whatever the name held.
type StoreRefsParams struct {
	Refs map[string]string `json:"refs"`
}

// StoreRefsResult reports the reconciliation: Applied names now carry
// the requested digest; Skipped names were withheld because the store
// does not hold their target blob (a ref must never outrun its
// content).
type StoreRefsResult struct {
	Applied int `json:"applied"`
	Skipped int `json:"skipped"`
}

// StudyEvent is one core.Event on the wire, the params of a study.event
// notification. Field presence follows the event kind exactly as
// core.Event documents; Err and Incident are rendered to strings.
type StudyEvent struct {
	Session  string `json:"session"`
	Seq      uint64 `json:"seq"`
	Kind     string `json:"kind"`
	Env      string `json:"env,omitempty"`
	App      string `json:"app,omitempty"`
	Tier     string `json:"tier,omitempty"`
	Err      string `json:"err,omitempty"`
	Incident string `json:"incident,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`
}

// Health is the daemon's structured health report: GET /healthz's body
// and ShutdownResult's closing snapshot. Status is "ok" while the
// server accepts submissions and "draining" once shutdown began.
type Health struct {
	Status   string         `json:"status"`
	Sessions SessionCounts  `json:"sessions"`
	Store    bool           `json:"store"`
	Fleet    *fleet.Stats   `json:"fleet,omitempty"`
	Server   Implementation `json:"server"`
}

// SessionCounts tallies the registry by lifecycle state.
type SessionCounts struct {
	Total     int `json:"total"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
}

// FleetRegisterParams is the worker half of the fleet.register
// handshake: the protocol version (negotiated exactly like initialize)
// and the worker's identity for diagnostics.
type FleetRegisterParams struct {
	ProtocolVersion string         `json:"protocolVersion"`
	Worker          Implementation `json:"worker,omitempty"`
}

// FleetRegisterResult assigns the worker its ID and the protocol
// timings: the lease TTL, the heartbeat cadence that keeps a lease
// alive, and the server-side cap on one claim long-poll.
type FleetRegisterResult struct {
	Worker      string `json:"worker"`
	LeaseMs     int64  `json:"leaseMs"`
	HeartbeatMs int64  `json:"heartbeatMs"`
	MaxWaitMs   int64  `json:"maxWaitMs"`
}

// FleetClaimParams asks for one unit, long-polling up to WaitMs (capped
// server-side) when the lease table is empty.
type FleetClaimParams struct {
	Worker string `json:"worker"`
	WaitMs int64  `json:"waitMs,omitempty"`
}

// FleetClaimResult is one claim outcome. A nil Unit with Closed false
// means the poll elapsed idle — claim again. Closed true means the
// coordinator shut down and the worker should drain and exit.
type FleetClaimResult struct {
	Unit    *core.UnitWork `json:"unit,omitempty"`
	Lease   string         `json:"lease,omitempty"`
	LeaseMs int64          `json:"leaseMs,omitempty"`
	Closed  bool           `json:"closed,omitempty"`
}

// FleetHeartbeatParams extends a lease while its unit computes.
type FleetHeartbeatParams struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// FleetHeartbeatResult reports the renewed lease time. A
// CodeUnknownLease error instead means the lease expired or its unit
// completed elsewhere — abandon the unit (or push anyway: a verified
// late artifact is still accepted and deduped).
type FleetHeartbeatResult struct {
	Lease   string `json:"lease"`
	LeaseMs int64  `json:"leaseMs"`
}

// FleetCompleteParams reports a computed unit: the lease, the unit key,
// and the manifest digest of the artifact whose blobs were uploaded via
// store.put on this same connection (or any earlier one). The
// coordinator verifies the artifact against the unit's exact draw
// schedule before accepting.
type FleetCompleteParams struct {
	Worker   string `json:"worker"`
	Lease    string `json:"lease"`
	Key      string `json:"key"`
	Manifest string `json:"manifest"`
}

// FleetCompleteResult acknowledges a completion. Duplicate means the
// unit was already done (another worker, or a retry) — harmless, the
// store is content-addressed and refs are first-write-wins.
type FleetCompleteResult struct {
	Key       string `json:"key"`
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate,omitempty"`
}

// FleetNackParams returns a claimed unit unfinished (compute error,
// worker shutting down): the lease re-queues immediately.
type FleetNackParams struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Reason string `json:"reason,omitempty"`
}

// FleetNackResult acknowledges the nack.
type FleetNackResult struct {
	Requeued bool `json:"requeued"`
}
