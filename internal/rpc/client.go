package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the study protocol to a Server's HTTP transport — the
// minimal client the CLI's -connect mode and the CI smoke are built on.
// Each call is one POST to <URL>/rpc; Subscribe holds its POST open and
// streams the event notifications. The zero HTTP field means
// http.DefaultClient.
type Client struct {
	URL  string // base URL, e.g. "http://127.0.0.1:8787"
	HTTP *http.Client
}

// clientResponse is the decode-side response shape (the server side
// marshals Result as any; the client needs the raw bytes back).
type clientResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  json.RawMessage `json:"result"`
	Error   *Error          `json:"error"`
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) endpoint() string {
	return strings.TrimSuffix(c.URL, "/") + "/rpc"
}

// post sends one request line and returns the streamed response body.
func (c *Client) post(ctx context.Context, method string, params any) (io.ReadCloser, error) {
	praw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(request{JSONRPC: "2.0", ID: json.RawMessage(`1`), Method: method, Params: praw})
	if err != nil {
		return nil, err
	}
	return c.postBody(ctx, append(line, '\n'))
}

// postBody sends pre-framed request lines as one POST body — the
// multi-request form chunked store.put uploads use, since the server
// stages an upload per connection and each POST is one connection.
func (c *Client) postBody(ctx context.Context, body []byte) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("rpc: POST %s: HTTP %s", c.endpoint(), resp.Status)
	}
	return resp.Body, nil
}

// newLineScanner builds the protocol's standard line scanner: NDJSON
// lines up to the framing cap.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return sc
}

// decodeResponse parses one response line into result.
func decodeResponse(line []byte, result any) error {
	var resp clientResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("rpc: bad response line: %w", err)
	}
	if resp.Error != nil {
		return resp.Error
	}
	if result == nil {
		return nil
	}
	return json.Unmarshal(resp.Result, result)
}

// call performs one request/response round trip.
func (c *Client) call(ctx context.Context, method string, params, result any) error {
	body, err := c.post(ctx, method, params)
	if err != nil {
		return err
	}
	defer body.Close()
	sc := newLineScanner(body)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("rpc: %s: empty response", method)
	}
	return decodeResponse(sc.Bytes(), result)
}

// Submit submits a spec text and returns its session identity.
func (c *Client) Submit(ctx context.Context, spec string) (SubmitResult, error) {
	var res SubmitResult
	err := c.call(ctx, "study.submit", SubmitParams{Spec: spec}, &res)
	return res, err
}

// Progress fetches a session's state and counters.
func (c *Client) Progress(ctx context.Context, session string) (ProgressResult, error) {
	var res ProgressResult
	err := c.call(ctx, "study.progress", SessionParams{Session: session}, &res)
	return res, err
}

// Cancel requests cooperative cancellation of a session.
func (c *Client) Cancel(ctx context.Context, session string) (CancelResult, error) {
	var res CancelResult
	err := c.call(ctx, "study.cancel", SessionParams{Session: session}, &res)
	return res, err
}

// Shutdown asks the server to drain and exit; it returns once the drain
// has completed (the server acknowledges only then). The result carries
// the server's post-drain health snapshot — its closing tallies.
func (c *Client) Shutdown(ctx context.Context) (ShutdownResult, error) {
	var res ShutdownResult
	err := c.call(ctx, "shutdown", struct{}{}, &res)
	return res, err
}

// Subscribe attaches to a session's event stream after the given cursor
// and invokes fn for every study.event notification until the stream
// ends (the session completed), fn returns an error, or ctx is
// cancelled. raw is the notification's exact wire line (without the
// trailing newline) — byte-stable across subscribers of one session, so
// a reattach can be verified by comparing raw lines. The returned
// SubscribeResult reports the events the cursor could not reach.
func (c *Client) Subscribe(ctx context.Context, session string, after uint64, fn func(raw []byte, ev StudyEvent) error) (SubscribeResult, error) {
	var res SubscribeResult
	body, err := c.post(ctx, "study.subscribe", SubscribeParams{Session: session, After: after})
	if err != nil {
		return res, err
	}
	defer body.Close()
	sc := newLineScanner(body)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return res, err
		}
		return res, fmt.Errorf("rpc: study.subscribe: empty response")
	}
	if err := decodeResponse(sc.Bytes(), &res); err != nil {
		return res, err
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var note struct {
			Method string     `json:"method"`
			Params StudyEvent `json:"params"`
		}
		if err := json.Unmarshal(line, &note); err != nil {
			return res, fmt.Errorf("rpc: bad notification line: %w", err)
		}
		if note.Method != "study.event" {
			continue
		}
		if fn != nil {
			if err := fn(append([]byte(nil), line...), note.Params); err != nil {
				return res, err
			}
		}
	}
	return res, sc.Err()
}
