package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudhpc/internal/core"
)

// rpcGoroutines counts live goroutines running this module's code — the
// goleak-style probe from internal/core, widened to every cloudhpc
// package so connection servers and event forwarders count too. Test
// goroutines are excluded by their testing frames.
func rpcGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(stack, "cloudhpc/internal/") &&
			!strings.Contains(stack, "testing.tRunner") &&
			!strings.Contains(stack, "testing.(*T).Run") {
			count++
		}
	}
	return count
}

func assertNoRPCGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := rpcGoroutines(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d module goroutines, baseline %d\n%s", rpcGoroutines(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testClient is a raw pipe connection for the concurrency tests — no
// transcript, just framed lines in and out.
type testClient struct {
	t    *testing.T
	in   *io.PipeWriter
	outR *io.PipeReader
	out  *bufio.Reader
	done chan error
}

func dial(t *testing.T, srv *Server) *testClient {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	tc := &testClient{t: t, in: inW, outR: outR, out: bufio.NewReader(outR), done: make(chan error, 1)}
	go func() {
		err := srv.ServeConn(context.Background(), inR, outW)
		outW.Close()
		tc.done <- err
	}()
	return tc
}

func (tc *testClient) close() {
	tc.outR.Close()
	tc.in.Close()
	<-tc.done
}

func (tc *testClient) send(line string) {
	tc.t.Helper()
	if _, err := io.WriteString(tc.in, line+"\n"); err != nil {
		tc.t.Errorf("send: %v", err)
	}
}

func (tc *testClient) readLine() (string, error) {
	line, err := tc.out.ReadString('\n')
	return strings.TrimSuffix(line, "\n"), err
}

// wireMsg is the union decode of one incoming line.
type wireMsg struct {
	Method string          `json:"method"`
	ID     json.RawMessage `json:"id"`
	Result json.RawMessage `json:"result"`
	Error  *Error          `json:"error"`
	Params StudyEvent      `json:"params"`
}

// readResponse reads lines — passing event notifications to onEvent —
// until the next response line arrives.
func (tc *testClient) readResponse(onEvent func(StudyEvent)) (wireMsg, error) {
	for {
		line, err := tc.readLine()
		if err != nil {
			return wireMsg{}, err
		}
		var msg wireMsg
		if err := json.Unmarshal([]byte(line), &msg); err != nil {
			return wireMsg{}, fmt.Errorf("bad line %q: %w", line, err)
		}
		if msg.Method == "study.event" {
			if onEvent != nil {
				onEvent(msg.Params)
			}
			continue
		}
		return msg, nil
	}
}

// eventKey is the comparable identity of one observed event.
func eventKey(ev StudyEvent) string {
	return fmt.Sprintf("%d|%s|%s|%s|%s|%d/%d", ev.Seq, ev.Kind, ev.Env, ev.App, ev.Tier, ev.Done, ev.Total)
}

func isTerminal(kind string) bool {
	return kind == "study-finished" || kind == "study-failed"
}

// TestConcurrentClientsSingleFlightRace is the protocol race test: N
// clients concurrently submit the same spec and subscribe from zero,
// while churn clients subscribe and unsubscribe in a loop, all under
// one server. It asserts the single-flight contract — one session is
// created, every submit names it — and the stream contract: every
// collector observes the identical, contiguous event sequence. After a
// shutdown RPC and connection teardown, no server goroutine survives.
// Run with -race; the schedule nondeterminism is the point (workers are
// left at all-CPUs, so event order across environments is arbitrary but
// must be one shared order).
func TestConcurrentClientsSingleFlightRace(t *testing.T) {
	baseline := rpcGoroutines()
	// Pinning Workers explicitly (to its own default) marks the runner
	// dataset-affecting, which bypasses the process-global study cache:
	// a repeat run in one process (-count=N) executes live instead of
	// streaming a short cached replay past the churners.
	srv := &Server{
		Runner: &core.Runner{Configure: func(o *core.Options) { o.Workers = runtime.NumCPU() }},
		Drain:  DrainCancel,
	}
	const spec = "seed 881001\\nenvs aws-eks-cpu google-gke-cpu\\nscales 2 4\\niterations 2\\ngranularity env-app\\n"
	submitLine := `{"jsonrpc":"2.0","id":2,"method":"study.submit","params":{"spec":"` + spec + `"}}`

	const collectors = 5
	var created atomic.Int32
	sessions := make([]string, collectors)
	streams := make([][]string, collectors)
	errs := make([]error, collectors)
	studyDone := make(chan struct{})

	var wg sync.WaitGroup
	var closeDone sync.Once
	for i := 0; i < collectors; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := dial(t, srv)
			defer tc.close()
			run := func() error {
				tc.send(initLine)
				if msg, err := tc.readResponse(nil); err != nil || msg.Error != nil {
					return fmt.Errorf("initialize: %v / %v", err, msg.Error)
				}
				tc.send(submitLine)
				msg, err := tc.readResponse(nil)
				if err != nil || msg.Error != nil {
					return fmt.Errorf("submit: %v / %v", err, msg.Error)
				}
				var sub SubmitResult
				if err := json.Unmarshal(msg.Result, &sub); err != nil {
					return err
				}
				if sub.Created {
					created.Add(1)
				}
				sessions[i] = sub.Session
				tc.send(`{"jsonrpc":"2.0","id":3,"method":"study.subscribe","params":{"session":"` + sub.Session + `"}}`)
				var res SubscribeResult
				msg, err = tc.readResponse(nil)
				if err != nil || msg.Error != nil {
					return fmt.Errorf("subscribe: %v / %v", err, msg.Error)
				}
				if err := json.Unmarshal(msg.Result, &res); err != nil {
					return err
				}
				if res.Missed != 0 {
					return fmt.Errorf("subscribe from 0 missed %d events despite the server replay ring", res.Missed)
				}
				for {
					line, err := tc.readLine()
					if err != nil {
						return fmt.Errorf("stream: %w", err)
					}
					var note wireMsg
					if err := json.Unmarshal([]byte(line), &note); err != nil {
						return fmt.Errorf("bad stream line %q: %w", line, err)
					}
					if note.Method != "study.event" {
						continue
					}
					streams[i] = append(streams[i], eventKey(note.Params))
					if isTerminal(note.Params.Kind) {
						return nil
					}
				}
			}
			errs[i] = run()
			closeDone.Do(func() { close(studyDone) })
		}()
	}

	// Churners: subscribe far past the stream and unsubscribe, over and
	// over, while the collectors stream — the subscribe/unsubscribe
	// registry churn the satellite asks for.
	const churners = 3
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := dial(t, srv)
			defer tc.close()
			tc.send(initLine)
			if _, err := tc.readResponse(nil); err != nil {
				return
			}
			tc.send(submitLine)
			msg, err := tc.readResponse(nil)
			if err != nil || msg.Error != nil {
				return
			}
			var sub SubmitResult
			if err := json.Unmarshal(msg.Result, &sub); err != nil {
				return
			}
			if sub.Created {
				created.Add(1)
			}
			for n := 0; ; n++ {
				select {
				case <-studyDone:
					return
				default:
				}
				tc.send(`{"jsonrpc":"2.0","id":10,"method":"study.subscribe","params":{"session":"` + sub.Session + `"}}`)
				if _, err := tc.readResponse(nil); err != nil {
					return
				}
				tc.send(`{"jsonrpc":"2.0","id":11,"method":"study.unsubscribe","params":{"session":"` + sub.Session + `"}}`)
				if _, err := tc.readResponse(nil); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := 0; i < collectors; i++ {
		if errs[i] != nil {
			t.Fatalf("collector %d: %v", i, errs[i])
		}
		if sessions[i] != sessions[0] {
			t.Fatalf("collector %d joined session %q, collector 0 joined %q: submits of one spec-hash must share a session", i, sessions[i], sessions[0])
		}
		if len(streams[i]) == 0 {
			t.Fatalf("collector %d observed no events", i)
		}
		if len(streams[i]) != len(streams[0]) {
			t.Fatalf("collector %d observed %d events, collector 0 observed %d: all subscribers must observe the identical stream", i, len(streams[i]), len(streams[0]))
		}
		for j, key := range streams[i] {
			if want := streams[0][j]; key != want {
				t.Fatalf("collector %d event %d = %s, collector 0 saw %s: all subscribers must observe the identical stream", i, j, key, want)
			}
			if !strings.HasPrefix(key, fmt.Sprintf("%d|", j+1)) {
				t.Fatalf("event %d has key %s: sequence numbers must be contiguous from 1", j, key)
			}
		}
	}
	if got := created.Load(); got != 1 {
		t.Fatalf("created=true on %d submits, want exactly 1 (single-flight)", got)
	}

	// Graceful shutdown over the protocol, then nothing may linger.
	tc := dial(t, srv)
	tc.send(`{"jsonrpc":"2.0","id":1,"method":"shutdown"}`)
	if msg, err := tc.readResponse(nil); err != nil || msg.Error != nil {
		t.Fatalf("shutdown: %v / %v", err, msg.Error)
	}
	tc.close()
	assertNoRPCGoroutineLeak(t, baseline)
}
