package rpc

// The store.* method family: internal/store's digest-exchange sync on
// the wire, making a running daemon a federation hub. The server side
// answers inventory/fetch/put/refs against the Runner's result store;
// StorePeer is the client side, a store.Peer over the HTTP transport,
// so cli.ServeSync drives the same Push/Pull that reconciles two
// in-process stores.
//
// Blob payloads ride the existing NDJSON framing base64-encoded, in
// chunks of at most syncChunkBytes raw bytes so every line stays under
// maxLineBytes. Uploads are staged per connection (chunks of one digest
// arrive in order) and verified against their digest before anything
// is stored; stored-but-unref'd blobs are pinned against GC until the
// connection's ref batch lands (oras.Registry.Pin — the sync analogue
// of the registry lock an in-flight push holds).

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"

	"cloudhpc/internal/oras"
	"cloudhpc/internal/store"
)

// syncChunkBytes bounds one blob chunk's raw payload. Base64 inflates
// by 4/3, so a chunk line (payload plus framing) stays comfortably
// under the maxLineBytes cap.
const syncChunkBytes = 2 << 20

// maxSyncBlobBytes bounds one assembled upload — a hostile client must
// not balloon daemon memory by streaming chunks forever. Far above any
// study bundle the store produces today.
const maxSyncBlobBytes = 1 << 28

// storeRegistry resolves the registry behind the store.* methods: the
// explicitly configured Runner store. A daemon started without -store
// has no sync surface (the process-default store is deliberately not
// consulted here — a hub must opt in to sharing a store).
func (c *conn) storeRegistry() (*oras.Registry, *Error) {
	if c.srv.Runner != nil && c.srv.Runner.Store != nil {
		return c.srv.Runner.Store.Registry(), nil
	}
	return nil, errf(CodeNoStore, "daemon has no result store (start it with -store DIR)")
}

// hasStore reports whether the store.* family is served — the
// initialize capability bit.
func (s *Server) hasStore() bool {
	return s.Runner != nil && s.Runner.Store != nil
}

func (c *conn) storeInventory() (any, *Error) {
	reg, e := c.storeRegistry()
	if e != nil {
		return nil, e
	}
	inv := reg.SyncInventory()
	return StoreInventoryResult{Digests: inv.Digests, Refs: inv.Refs}, nil
}

func (c *conn) storeFetch(raw json.RawMessage) (any, *Error) {
	reg, e := c.storeRegistry()
	if e != nil {
		return nil, e
	}
	var p StoreFetchParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if !store.ValidDigest(p.Digest) {
		return nil, errf(CodeInvalidParams, "malformed digest %q", p.Digest)
	}
	data, err := reg.FetchBlob(oras.Digest(p.Digest))
	if err != nil {
		// Unknown and corrupt both mean "cannot serve": the store's Get
		// has already evicted an unservable blob from the inventory, so
		// the peer's next diff stops asking.
		return nil, errf(CodeInvalidParams, "fetch %s: %v", p.Digest, err)
	}
	size := int64(len(data))
	if p.Offset < 0 || p.Offset > size {
		return nil, errf(CodeInvalidParams, "offset %d outside blob of %d bytes", p.Offset, size)
	}
	end := min(p.Offset+syncChunkBytes, size)
	return StoreFetchResult{
		Digest: p.Digest,
		Size:   size,
		Offset: p.Offset,
		Data:   base64.StdEncoding.EncodeToString(data[p.Offset:end]),
		EOF:    end == size,
	}, nil
}

// resetUpload abandons the connection's staged upload (bad chunk,
// digest mismatch): the next store.put starts fresh at offset 0.
func (c *conn) resetUpload() {
	c.mu.Lock()
	c.upDigest, c.upBuf = "", nil
	c.mu.Unlock()
}

func (c *conn) storePut(raw json.RawMessage) (any, *Error) {
	reg, e := c.storeRegistry()
	if e != nil {
		return nil, e
	}
	var p StorePutParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if !store.ValidDigest(p.Digest) {
		return nil, errf(CodeInvalidParams, "malformed digest %q", p.Digest)
	}
	chunk, err := base64.StdEncoding.DecodeString(p.Data)
	if err != nil {
		c.resetUpload()
		return nil, errf(CodeInvalidParams, "chunk payload is not base64: %v", err)
	}

	c.mu.Lock()
	switch {
	case c.upDigest == "":
		if p.Offset != 0 {
			c.mu.Unlock()
			return nil, errf(CodeInvalidParams, "first chunk of %s must start at offset 0, got %d", p.Digest, p.Offset)
		}
		c.upDigest = p.Digest
	case c.upDigest != p.Digest:
		d := c.upDigest
		c.mu.Unlock()
		return nil, errf(CodeInvalidParams, "upload of %s already in flight on this connection", d)
	case p.Offset != int64(len(c.upBuf)):
		got := int64(len(c.upBuf))
		c.mu.Unlock()
		c.resetUpload()
		return nil, errf(CodeInvalidParams, "chunk offset %d does not continue upload at %d", p.Offset, got)
	}
	if int64(len(c.upBuf))+int64(len(chunk)) > maxSyncBlobBytes {
		c.mu.Unlock()
		c.resetUpload()
		return nil, errf(CodeInvalidParams, "upload exceeds %d bytes", maxSyncBlobBytes)
	}
	c.upBuf = append(c.upBuf, chunk...)
	last := p.Last
	var assembled []byte
	if last {
		assembled = c.upBuf
		c.upDigest, c.upBuf = "", nil
	}
	c.mu.Unlock()

	if !last {
		return StorePutResult{Digest: p.Digest, Stored: false}, nil
	}
	// Arrival-side verification: the store must never be handed content
	// that does not hash to its declared name.
	if got := store.DigestOf(assembled); got != p.Digest {
		return nil, errf(CodeInvalidParams, "assembled content hashes to %s, not %s", got, p.Digest)
	}
	dig, release, err := reg.IngestBlob(assembled)
	if err != nil {
		return nil, errf(CodeInternal, "storing %s: %v", p.Digest, err)
	}
	c.mu.Lock()
	c.pinned = append(c.pinned, release)
	c.mu.Unlock()
	return StorePutResult{Digest: dig, Stored: true}, nil
}

func (c *conn) storeRefs(raw json.RawMessage) (any, *Error) {
	reg, e := c.storeRegistry()
	if e != nil {
		return nil, e
	}
	var p StoreRefsParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	for name, d := range p.Refs {
		if name == "" || !store.ValidDigest(d) {
			return nil, errf(CodeInvalidParams, "bad ref %q -> %q", name, d)
		}
	}
	applied, skipped, err := reg.ReconcileRefs(p.Refs)
	if err != nil {
		return nil, errf(CodeInternal, "reconciling refs: %v", err)
	}
	// The refs are down: blobs this connection ingested are either
	// anchored now or legitimately unreferenced, so the GC pins lift.
	c.releasePins()
	return StoreRefsResult{Applied: applied, Skipped: skipped}, nil
}

// releasePins lifts the connection's GC pins and drops any staged
// upload — called when a ref batch lands and when the connection ends.
func (c *conn) releasePins() {
	c.mu.Lock()
	pins := c.pinned
	c.pinned = nil
	c.upDigest, c.upBuf = "", nil
	c.mu.Unlock()
	for _, release := range pins {
		release()
	}
}

// StorePeer speaks the store.* family to a daemon: the wire
// implementation of store.Peer, so store.Push and store.Pull drive a
// remote hub exactly like a local directory. Blob uploads send all
// chunks of one digest in a single POST — the HTTP transport gives each
// POST its own connection, and the server stages chunked uploads per
// connection.
type StorePeer struct {
	C *Client
}

// Inventory implements store.Peer.
func (p StorePeer) Inventory(ctx context.Context) (store.Inventory, error) {
	var res StoreInventoryResult
	if err := p.C.call(ctx, "store.inventory", struct{}{}, &res); err != nil {
		return store.Inventory{}, err
	}
	return store.Inventory{Digests: res.Digests, Refs: res.Refs}, nil
}

// Fetch implements store.Peer: loops chunk requests until EOF and
// returns the assembled bytes (the sync layer re-verifies the digest).
func (p StorePeer) Fetch(ctx context.Context, digest string) ([]byte, error) {
	var buf []byte
	for {
		var res StoreFetchResult
		err := p.C.call(ctx, "store.fetch", StoreFetchParams{Digest: digest, Offset: int64(len(buf))}, &res)
		if err != nil {
			return nil, err
		}
		chunk, err := base64.StdEncoding.DecodeString(res.Data)
		if err != nil {
			return nil, fmt.Errorf("rpc: store.fetch %s: bad chunk payload: %w", digest, err)
		}
		if res.Offset != int64(len(buf)) {
			return nil, fmt.Errorf("rpc: store.fetch %s: chunk at offset %d, expected %d", digest, res.Offset, len(buf))
		}
		buf = append(buf, chunk...)
		if res.EOF {
			return buf, nil
		}
		if len(chunk) == 0 {
			return nil, fmt.Errorf("rpc: store.fetch %s: empty non-final chunk", digest)
		}
	}
}

// Put implements store.Peer: all chunks of the blob travel in one POST
// so the server's per-connection staging sees them in order, and the
// server's GC pin covers the blob at least until that POST completes.
func (p StorePeer) Put(ctx context.Context, data []byte) (string, error) {
	digest := store.DigestOf(data)
	var body bytes.Buffer
	n := 0
	for off := 0; ; off += syncChunkBytes {
		end := min(off+syncChunkBytes, len(data))
		params, err := json.Marshal(StorePutParams{
			Digest: digest,
			Offset: int64(off),
			Data:   base64.StdEncoding.EncodeToString(data[off:end]),
			Last:   end == len(data),
		})
		if err != nil {
			return "", err
		}
		n++
		line, err := json.Marshal(request{JSONRPC: "2.0", ID: json.RawMessage(strconv.Itoa(n)), Method: "store.put", Params: params})
		if err != nil {
			return "", err
		}
		body.Write(line)
		body.WriteByte('\n')
		if end == len(data) {
			break
		}
	}
	respBody, err := p.C.postBody(ctx, body.Bytes())
	if err != nil {
		return "", err
	}
	defer respBody.Close()
	sc := newLineScanner(respBody)
	var res StorePutResult
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("rpc: store.put: %d of %d chunk replies", i, n)
		}
		if err := decodeResponse(sc.Bytes(), &res); err != nil {
			return "", err
		}
	}
	if !res.Stored {
		return "", fmt.Errorf("rpc: store.put %s: final chunk not acknowledged as stored", digest)
	}
	return res.Digest, nil
}

// SetRefs implements store.Peer.
func (p StorePeer) SetRefs(ctx context.Context, refs map[string]string) (int, error) {
	var res StoreRefsResult
	if err := p.C.call(ctx, "store.refs", StoreRefsParams{Refs: refs}, &res); err != nil {
		return 0, err
	}
	return res.Applied, nil
}
