package rpc

import (
	"encoding/json"
	"net/http"
)

// Handler exposes the protocol over streamable HTTP:
//
//	POST /rpc      request lines in the body, response and notification
//	               lines streamed back as application/x-ndjson. A POST
//	               carrying a study.subscribe keeps its response open
//	               until the subscribed sessions end — the streaming
//	               transport — and each line is flushed as it is written.
//	GET  /healthz  structured health report (Health as JSON): session
//	               tallies, store presence, and — with a fleet attached —
//	               the lease-table counters. Always HTTP 200 so probes
//	               distinguish "unreachable" from "draining" by body, and
//	               `curl -sf` liveness checks keep working.
//
// Each POST is its own connection and starts initialized: the handshake
// is per stdio connection, not per HTTP request, or the streamable
// transport would be unusable. Everything else — the session registry,
// single-flight, replay cursors — is shared with every other connection
// of the same Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Health())
	})
	mux.HandleFunc("/rpc", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		c := s.newConn(w, true)
		c.streamTail = true
		c.serve(r.Context(), r.Body)
	})
	return mux
}
