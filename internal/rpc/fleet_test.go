package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/store"
)

// fleetTestServer assembles a daemon with a memory store and a fleet
// coordinator over httptest — the three-process CI smoke in one
// process, minus the processes.
func fleetTestServer(t *testing.T, opts fleet.Options) (*Client, *Server, *fleet.Coordinator, *core.ResultStore, func()) {
	t.Helper()
	rs := core.NewResultStore(store.NewMemory())
	co := fleet.New(opts, rs)
	runner := &core.Runner{Store: rs, Fleet: co}
	srv := &Server{Runner: runner, Drain: DrainWait, Fleet: co}
	hs := httptest.NewServer(srv.Handler())
	cleanup := func() {
		co.Close()
		hs.Close()
	}
	return &Client{URL: hs.URL}, srv, co, rs, cleanup
}

// TestFleetWorkerEndToEnd drives the full wire protocol: two RunWorker
// loops against a coordinating daemon, a study whose units they
// compute, and a healthz report that accounts for all of it.
func TestFleetWorkerEndToEnd(t *testing.T) {
	client, srv, co, _, cleanup := fleetTestServer(t, fleet.Options{
		LeaseTTL:     500 * time.Millisecond,
		MaxClaimWait: 100 * time.Millisecond,
		Straggler:    20 * time.Second,
	})
	defer cleanup()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(ctx, client, Implementation{Name: fmt.Sprintf("w%d", i), Version: "test"}, t.Logf)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}

	// A spec the process-wide memory tier has never seen (unique seed).
	spec := "seed 880915\nenvs google-gke-cpu aws-eks-cpu\nscales 2 4\niterations 2\ngranularity env-app\n"
	sub, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		pr, err := client.Progress(context.Background(), sub.Session)
		if err != nil {
			t.Fatal(err)
		}
		if pr.State == "done" {
			break
		}
		if pr.State != "running" {
			t.Fatalf("session ended %s: %s", pr.State, pr.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("study did not complete within 60s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := co.Stats(); s.Completed == 0 {
		t.Fatalf("no units completed over the wire: %+v", s)
	}

	// The structured health report must account for the fleet.
	resp, err := http.Get(client.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %s", resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not valid JSON: %v", err)
	}
	if h.Status != "ok" || h.Sessions.Done != 1 || !h.Store {
		t.Fatalf("healthz: %+v", h)
	}
	if h.Fleet == nil || h.Fleet.Workers != 2 || h.Fleet.Completed == 0 {
		t.Fatalf("healthz fleet stats: %+v", h.Fleet)
	}

	// Shutdown closes the coordinator; both workers must drain to nil
	// (asserted in their goroutines) and the reply carries final health.
	res, err := client.Shutdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Health == nil || res.Health.Status != "draining" {
		t.Fatalf("shutdown result: %+v", res)
	}
	wg.Wait()
	select {
	case <-srv.Drained():
	default:
		t.Fatal("server not drained after shutdown ack")
	}
}

// TestFleetClaimAfterCloseSignalsWorkers covers the drain handshake at
// the wire level: a claim against a closed coordinator answers
// closed=true, not an error.
func TestFleetClaimAfterCloseSignalsWorkers(t *testing.T) {
	client, _, co, _, cleanup := fleetTestServer(t, fleet.Options{MaxClaimWait: 50 * time.Millisecond})
	defer cleanup()
	reg, err := client.FleetRegister(context.Background(), Implementation{Name: "w", Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	co.Close()
	res, err := client.FleetClaim(context.Background(), reg.Worker, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed {
		t.Fatalf("claim after close: %+v, want closed", res)
	}
}

// TestFleetMethodsWithoutCoordinator pins the -32005 taxonomy: every
// fleet verb on a fleetless daemon refuses with CodeNoFleet, and the
// initialize capabilities advertise fleet=false.
func TestFleetMethodsWithoutCoordinator(t *testing.T) {
	srv := &Server{Drain: DrainCancel}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := &Client{URL: hs.URL}
	if _, err := client.FleetRegister(context.Background(), Implementation{Name: "w"}); !isCode(err, CodeNoFleet) {
		t.Fatalf("register on fleetless daemon: %v", err)
	}
	if _, err := client.FleetClaim(context.Background(), "W1", time.Second); !isCode(err, CodeNoFleet) {
		t.Fatalf("claim on fleetless daemon: %v", err)
	}
	if _, err := client.FleetHeartbeat(context.Background(), "W1", "L1"); !isCode(err, CodeNoFleet) {
		t.Fatalf("heartbeat on fleetless daemon: %v", err)
	}
	if _, err := client.FleetNack(context.Background(), "W1", "L1", "x"); !isCode(err, CodeNoFleet) {
		t.Fatalf("nack on fleetless daemon: %v", err)
	}
}

// TestFleetErrorTaxonomy pins the remaining lease-protocol codes over
// the wire: unknown worker, unknown lease, bad protocol version.
func TestFleetErrorTaxonomy(t *testing.T) {
	client, _, co, _, cleanup := fleetTestServer(t, fleet.Options{MaxClaimWait: 50 * time.Millisecond})
	defer cleanup()
	_ = co
	if _, err := client.FleetClaim(context.Background(), "W404", time.Second); !isCode(err, CodeUnknownWorker) {
		t.Fatalf("claim from unregistered worker: %v", err)
	}
	reg, err := client.FleetRegister(context.Background(), Implementation{Name: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FleetHeartbeat(context.Background(), reg.Worker, "L404"); !isCode(err, CodeUnknownLease) {
		t.Fatalf("heartbeat on unknown lease: %v", err)
	}
	if _, err := client.FleetNack(context.Background(), reg.Worker, "L404", "x"); !isCode(err, CodeUnknownLease) {
		t.Fatalf("nack on unknown lease: %v", err)
	}
	var res FleetRegisterResult
	err = client.call(context.Background(), "fleet.register",
		FleetRegisterParams{ProtocolVersion: "99", Worker: Implementation{Name: "w"}}, &res)
	if !isCode(err, CodeInvalidParams) {
		t.Fatalf("register with bad protocol version: %v", err)
	}
}

func isCode(err error, code int) bool {
	re, ok := err.(*Error)
	return ok && re.Code == code
}
