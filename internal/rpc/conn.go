package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cloudhpc/internal/core"
)

// errConnClosed poisons writes after the connection's peer is gone, so
// forwarders racing the teardown fail fast instead of writing into a
// dead pipe.
var errConnClosed = errors.New("rpc: connection closed")

// conn is one client connection's protocol state: the line writer every
// reply and notification serialises through, the initialize gate, and
// the connection's active subscriptions with their forwarder goroutines.
type conn struct {
	srv *Server
	// initialized gates the study methods. Stdio connections start false
	// (the handshake is mandatory); HTTP connections start true — each
	// POST is a fresh conn, and re-negotiating per request would make the
	// streamable transport unusable.
	initialized bool
	// streamTail keeps subscriptions alive after the input side ends: the
	// HTTP transport sends its requests as the POST body and then reads
	// the streamed response until its sessions finish. Stdio is full
	// duplex — input EOF there means the client is gone.
	streamTail bool
	// ctx is the connection's lifetime context (the HTTP request's, or
	// serve's argument): long-polling handlers (fleet.claim) block on it
	// so a vanished peer releases them.
	ctx context.Context

	writeMu sync.Mutex
	bw      *bufio.Writer
	dst     io.Writer
	closed  atomic.Bool

	mu   sync.Mutex
	subs map[string]*core.Subscription
	wg   sync.WaitGroup

	// Store-sync staging (guarded by mu): the one in-flight chunked
	// upload and the GC-pin releases for blobs ingested on this
	// connection (lifted when a ref batch lands, or at connection end).
	upDigest string
	upBuf    []byte
	pinned   []func()
}

func (s *Server) newConn(w io.Writer, initialized bool) *conn {
	return &conn{
		srv:         s,
		initialized: initialized,
		bw:          bufio.NewWriter(w),
		dst:         w,
		subs:        make(map[string]*core.Subscription),
	}
}

// writeLine marshals one message and writes it as one flushed line.
// Every writer on the connection — the request loop and each forwarder —
// serialises through writeMu, so lines never interleave.
func (c *conn) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed.Load() {
		return errConnClosed
	}
	if _, err := c.bw.Write(data); err != nil {
		c.closed.Store(true)
		return err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		c.closed.Store(true)
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.closed.Store(true)
		return err
	}
	// Streamed HTTP responses must reach the client per line, not per
	// buffer: push the transport's own flush when it has one
	// (http.Flusher; bufio.Writer's error-returning Flush doesn't match).
	if f, ok := c.dst.(interface{ Flush() }); ok {
		f.Flush()
	}
	return nil
}

func (c *conn) reply(id json.RawMessage, result any, rpcErr *Error) {
	if id == nil {
		// Notification: executed, never answered.
		return
	}
	if rpcErr != nil {
		c.writeLine(response{JSONRPC: "2.0", ID: id, Error: rpcErr})
		return
	}
	c.writeLine(response{JSONRPC: "2.0", ID: id, Result: result})
}

// ServeConn speaks the line protocol over one reader/writer pair until
// the input ends or a shutdown request completes — the stdio transport
// (and, via Handler, the body/response halves of a streamable HTTP
// request). The first request on a stdio connection must be initialize.
func (s *Server) ServeConn(ctx context.Context, r io.Reader, w io.Writer) error {
	return s.newConn(w, false).serve(ctx, r)
}

func (c *conn) serve(ctx context.Context, r io.Reader) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
	// A cancelled context (client disconnect on HTTP, daemon teardown on
	// stdio) tears the connection's streams down even when no read or
	// write is in flight to notice.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			c.teardown()
		case <-watchDone:
		}
	}()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	closing := false
	for !closing && sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		closing = c.handleLine(line)
	}
	err := sc.Err()
	if errors.Is(err, bufio.ErrTooLong) {
		// The framing bound is a protocol error, not a transport failure:
		// report it on the wire (the line cannot be parsed, so no id).
		c.writeLine(response{JSONRPC: "2.0", Error: errf(CodeParse, "line exceeds %d bytes", maxLineBytes)})
	}
	if !closing && !c.streamTail {
		c.teardown()
	}
	// Let active forwarders finish: on stdio after a shutdown they have
	// already drained; on streamable HTTP this is what holds the response
	// open until the subscribed sessions end.
	c.wg.Wait()
	// The conversation is over: any sync blobs still pinned (pushed but
	// never anchored by a store.refs) go back under normal GC rules.
	c.releasePins()
	if closing {
		return nil
	}
	return err
}

// teardown poisons the writer and detaches every subscription: the peer
// is gone, so forwarders must stop rather than block on a dead pipe.
func (c *conn) teardown() {
	c.closed.Store(true)
	c.mu.Lock()
	subs := make([]*core.Subscription, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, sub)
	}
	c.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	c.releasePins()
}

// handleLine decodes and dispatches one request line. It reports whether
// the connection should close (a completed shutdown).
func (c *conn) handleLine(line []byte) (closing bool) {
	var req request
	if err := json.Unmarshal(line, &req); err != nil {
		c.writeLine(response{JSONRPC: "2.0", Error: errf(CodeParse, "parse error: %v", err)})
		return false
	}
	if req.JSONRPC != "2.0" || req.Method == "" {
		c.reply(req.ID, nil, errf(CodeInvalidRequest, "not a JSON-RPC 2.0 request"))
		return false
	}

	if req.Method == "shutdown" {
		// Drain before answering: the shutdown reply is the
		// drain-complete acknowledgement, and waiting for this
		// connection's forwarders first guarantees every subscribed
		// terminal event is on the wire before it. The reply carries the
		// post-drain health snapshot — the daemon's closing tallies.
		c.srv.Shutdown()
		c.wg.Wait()
		h := c.srv.Health()
		c.reply(req.ID, ShutdownResult{OK: true, Health: &h}, nil)
		return true
	}

	var result any
	var rpcErr *Error
	var after func()
	switch req.Method {
	case "initialize":
		result, rpcErr = c.initialize(req.Params)
	case "study.submit", "study.subscribe", "study.unsubscribe", "study.progress", "study.cancel",
		"store.inventory", "store.fetch", "store.put", "store.refs",
		"fleet.register", "fleet.claim", "fleet.heartbeat", "fleet.complete", "fleet.nack":
		if !c.initialized {
			rpcErr = errf(CodeNotInitialized, "initialize required before %q", req.Method)
			break
		}
		switch req.Method {
		case "study.submit":
			result, rpcErr = c.submit(req.Params)
		case "study.subscribe":
			result, rpcErr, after = c.subscribe(req.Params)
		case "study.unsubscribe":
			result, rpcErr = c.unsubscribe(req.Params)
		case "study.progress":
			result, rpcErr = c.progress(req.Params)
		case "study.cancel":
			result, rpcErr, after = c.cancelStudy(req.Params)
		case "store.inventory":
			result, rpcErr = c.storeInventory()
		case "store.fetch":
			result, rpcErr = c.storeFetch(req.Params)
		case "store.put":
			result, rpcErr = c.storePut(req.Params)
		case "store.refs":
			result, rpcErr = c.storeRefs(req.Params)
		case "fleet.register":
			result, rpcErr = c.fleetRegister(req.Params)
		case "fleet.claim":
			result, rpcErr = c.fleetClaim(req.Params)
		case "fleet.heartbeat":
			result, rpcErr = c.fleetHeartbeat(req.Params)
		case "fleet.complete":
			result, rpcErr = c.fleetComplete(req.Params)
		case "fleet.nack":
			result, rpcErr = c.fleetNack(req.Params)
		}
	default:
		rpcErr = errf(CodeMethodNotFound, "unknown method %q", req.Method)
	}
	c.reply(req.ID, result, rpcErr)
	// Post-reply actions keep the wire order deterministic: the
	// subscribe forwarder must not emit an event notification before the
	// subscribe response, and a cancel must be acknowledged before the
	// cancellation's own failure events can appear.
	if after != nil {
		after()
	}
	return false
}

func unmarshalParams(raw json.RawMessage, v any) *Error {
	if len(raw) == 0 {
		return errf(CodeInvalidParams, "missing params")
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return errf(CodeInvalidParams, "params: %v", err)
	}
	return nil
}

func (c *conn) initialize(raw json.RawMessage) (any, *Error) {
	var p InitializeParams
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, errf(CodeInvalidParams, "params: %v", err)
		}
	}
	if p.ProtocolVersion != ProtocolVersion {
		e := errf(CodeInvalidParams, "unsupported protocol version %q", p.ProtocolVersion)
		e.Data = map[string]any{"supported": []string{ProtocolVersion}}
		return nil, e
	}
	c.initialized = true
	info := c.srv.Info
	if info.Name == "" {
		info.Name = "cloudhpc-serve"
	}
	return InitializeResult{
		ProtocolVersion: ProtocolVersion,
		Capabilities: Capabilities{
			Study: StudyCapabilities{
				Subscribe:    true,
				Replay:       c.srv.effectiveReplay(),
				Cancel:       true,
				SingleFlight: true,
			},
			Store: c.srv.hasStore(),
			Drain: c.srv.drainPolicy(),
		},
		ServerInfo: info,
	}, nil
}

func (c *conn) submit(raw json.RawMessage) (any, *Error) {
	var p SubmitParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	if p.Spec == "" {
		return nil, errf(CodeInvalidParams, "empty spec")
	}
	res, e := c.srv.submit(p.Spec)
	if e != nil {
		return nil, e
	}
	return res, nil
}

func (c *conn) subscribe(raw json.RawMessage) (any, *Error, func()) {
	var p SubscribeParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e, nil
	}
	ss, e := c.srv.lookup(p.Session)
	if e != nil {
		return nil, e, nil
	}
	sub := ss.sess.SubscribeFrom(p.After)
	c.mu.Lock()
	if old, ok := c.subs[ss.id]; ok {
		// Re-subscribing replaces this connection's stream for the
		// session (the old forwarder unwinds on its closed channel).
		old.Close()
	}
	c.subs[ss.id] = sub
	c.mu.Unlock()
	c.wg.Add(1)
	// The forwarder starts only after the subscribe response is written,
	// so the response always precedes the first event notification.
	return SubscribeResult{Session: ss.id, After: p.After, Missed: sub.Missed}, nil, func() {
		go c.forward(ss, sub)
	}
}

// forward pumps one subscription's events onto the wire as study.event
// notifications until the stream closes (session end or unsubscribe) or
// the connection dies.
func (c *conn) forward(ss *studySession, sub *core.Subscription) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		if c.subs[ss.id] == sub {
			delete(c.subs, ss.id)
		}
		c.mu.Unlock()
	}()
	for ev := range sub.Events {
		if err := c.writeLine(notification{JSONRPC: "2.0", Method: "study.event", Params: wireEvent(ss.id, ev)}); err != nil {
			sub.Close()
			return
		}
	}
}

// wireEvent renders one core.Event for the wire.
func wireEvent(session string, ev core.Event) StudyEvent {
	we := StudyEvent{
		Session: session,
		Seq:     ev.Seq,
		Kind:    string(ev.Kind),
		Env:     ev.Env,
		App:     ev.App,
		Tier:    ev.Tier,
		Done:    ev.Done,
		Total:   ev.Total,
	}
	if ev.Err != nil {
		we.Err = ev.Err.Error()
	}
	if ev.Incident != nil {
		we.Incident = fmt.Sprintf("%s: %s", ev.Incident.Kind, ev.Incident.Detail)
	}
	return we
}

func (c *conn) unsubscribe(raw json.RawMessage) (any, *Error) {
	var p SessionParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	ss, e := c.srv.lookup(p.Session)
	if e != nil {
		return nil, e
	}
	c.mu.Lock()
	sub, ok := c.subs[ss.id]
	if ok {
		delete(c.subs, ss.id)
	}
	c.mu.Unlock()
	if ok {
		sub.Close()
	}
	return UnsubscribeResult{Session: ss.id, Unsubscribed: ok}, nil
}

func (c *conn) progress(raw json.RawMessage) (any, *Error) {
	var p SessionParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e
	}
	ss, e := c.srv.lookup(p.Session)
	if e != nil {
		return nil, e
	}
	done, total := ss.sess.Progress()
	state, serr := ss.state()
	pr := ProgressResult{
		Session: ss.id,
		State:   state,
		Done:    done,
		Total:   total,
		Seq:     ss.sess.Seq(),
		Lost:    ss.sess.Lost(),
		Dropped: ss.sess.Dropped(),
	}
	if serr != nil {
		pr.Err = serr.Error()
	}
	return pr, nil
}

func (c *conn) cancelStudy(raw json.RawMessage) (any, *Error, func()) {
	var p SessionParams
	if e := unmarshalParams(raw, &p); e != nil {
		return nil, e, nil
	}
	ss, e := c.srv.lookup(p.Session)
	if e != nil {
		return nil, e, nil
	}
	state, _ := ss.state()
	// Cancel only after the reply is on the wire: every event the
	// cancellation provokes then follows the acknowledgement.
	return CancelResult{Session: ss.id, Cancelled: state == "running"}, nil, ss.sess.Cancel
}
