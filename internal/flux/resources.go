// Package flux implements a Flux-Framework-style hierarchical resource
// manager — the scheduler the study deployed in every Kubernetes
// environment (via the Flux Operator) and on the Compute Engine VM
// clusters (paper §2.3).
//
// Flux's defining ideas, reproduced here:
//
//   - Resources form a *graph* (cluster → nodes → sockets → cores/GPUs),
//     and jobs are matched against it rather than against a flat count.
//   - Job requests are *jobspecs*: declarative resource shapes ("2 nodes
//     with 4 cores and 1 GPU per task").
//   - Instances are *hierarchical*: a job can be an entire nested Flux
//     instance managing the resources it was granted — exactly how the
//     Flux Operator carves a MiniCluster out of Kubernetes nodes.
package flux

import (
	"fmt"
	"strings"
)

// ResourceType names a vertex type in the resource graph.
type ResourceType string

const (
	ClusterRes ResourceType = "cluster"
	NodeRes    ResourceType = "node"
	SocketRes  ResourceType = "socket"
	CoreRes    ResourceType = "core"
	GPURes     ResourceType = "gpu"
)

// Resource is a vertex in the hierarchical resource graph.
type Resource struct {
	Type     ResourceType
	Name     string
	Children []*Resource

	allocatedTo uint64 // job ID holding this vertex (0 = free)
}

// NewCluster builds a uniform cluster graph: nodes × sockets × (cores,
// gpus) per socket. It panics on non-positive nodes or sockets because a
// resource graph without vertices is a caller bug.
func NewCluster(name string, nodes, socketsPerNode, coresPerSocket, gpusPerSocket int) *Resource {
	if nodes <= 0 || socketsPerNode <= 0 {
		panic(fmt.Sprintf("flux: invalid cluster shape %d nodes × %d sockets", nodes, socketsPerNode))
	}
	cluster := &Resource{Type: ClusterRes, Name: name}
	for n := 0; n < nodes; n++ {
		node := &Resource{Type: NodeRes, Name: fmt.Sprintf("%s-node%03d", name, n)}
		for s := 0; s < socketsPerNode; s++ {
			socket := &Resource{Type: SocketRes, Name: fmt.Sprintf("%s-s%d", node.Name, s)}
			for c := 0; c < coresPerSocket; c++ {
				socket.Children = append(socket.Children, &Resource{
					Type: CoreRes, Name: fmt.Sprintf("%s-c%d", socket.Name, c),
				})
			}
			for g := 0; g < gpusPerSocket; g++ {
				socket.Children = append(socket.Children, &Resource{
					Type: GPURes, Name: fmt.Sprintf("%s-g%d", socket.Name, g),
				})
			}
			node.Children = append(node.Children, socket)
		}
		cluster.Children = append(cluster.Children, node)
	}
	return cluster
}

// Walk visits every vertex depth-first.
func (r *Resource) Walk(visit func(*Resource)) {
	visit(r)
	for _, c := range r.Children {
		c.Walk(visit)
	}
}

// Count returns the number of vertices of a type under r (inclusive).
func (r *Resource) Count(t ResourceType) int {
	n := 0
	r.Walk(func(v *Resource) {
		if v.Type == t {
			n++
		}
	})
	return n
}

// CountFree returns unallocated vertices of a type under r. A vertex is
// considered allocated if it or any ancestor holds an allocation; callers
// must pass the graph root for exact results.
func (r *Resource) CountFree(t ResourceType) int {
	n := 0
	var walk func(v *Resource, busy bool)
	walk = func(v *Resource, busy bool) {
		busy = busy || v.allocatedTo != 0
		if v.Type == t && !busy {
			n++
		}
		for _, c := range v.Children {
			walk(c, busy)
		}
	}
	walk(r, false)
	return n
}

// nodesUnder returns the node vertices under r.
func (r *Resource) nodesUnder() []*Resource {
	var out []*Resource
	r.Walk(func(v *Resource) {
		if v.Type == NodeRes {
			out = append(out, v)
		}
	})
	return out
}

// String renders the graph as an indented tree (for diagnostics).
func (r *Resource) String() string {
	var b strings.Builder
	var walk func(v *Resource, depth int)
	walk = func(v *Resource, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), v.Type, v.Name)
		if v.allocatedTo != 0 {
			fmt.Fprintf(&b, " [job %d]", v.allocatedTo)
		}
		b.WriteByte('\n')
		// Compress leaf fan-out: print counts instead of thousands of cores.
		var leafCores, leafGPUs int
		for _, c := range v.Children {
			switch {
			case c.Type == CoreRes:
				leafCores++
			case c.Type == GPURes:
				leafGPUs++
			default:
				walk(c, depth+1)
			}
		}
		if leafCores > 0 || leafGPUs > 0 {
			fmt.Fprintf(&b, "%s%d cores, %d gpus\n", strings.Repeat("  ", depth+1), leafCores, leafGPUs)
		}
	}
	walk(r, 0)
	return b.String()
}
