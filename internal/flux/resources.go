// Package flux implements a Flux-Framework-style hierarchical resource
// manager — the scheduler the study deployed in every Kubernetes
// environment (via the Flux Operator) and on the Compute Engine VM
// clusters (paper §2.3).
//
// Flux's defining ideas, reproduced here:
//
//   - Resources form a *graph* (cluster → nodes → sockets → cores/GPUs),
//     and jobs are matched against it rather than against a flat count.
//   - Job requests are *jobspecs*: declarative resource shapes ("2 nodes
//     with 4 cores and 1 GPU per task").
//   - Instances are *hierarchical*: a job can be an entire nested Flux
//     instance managing the resources it was granted — exactly how the
//     Flux Operator carves a MiniCluster out of Kubernetes nodes.
package flux

import (
	"fmt"
	"strconv"
	"strings"
)

// ResourceType names a vertex type in the resource graph.
type ResourceType string

const (
	ClusterRes ResourceType = "cluster"
	NodeRes    ResourceType = "node"
	SocketRes  ResourceType = "socket"
	CoreRes    ResourceType = "core"
	GPURes     ResourceType = "gpu"
)

// Resource is a vertex in the hierarchical resource graph.
type Resource struct {
	Type     ResourceType
	Name     string
	Children []*Resource

	allocatedTo uint64 // job ID holding this vertex (0 = free)
}

// NewCluster builds a uniform cluster graph: nodes × sockets × (cores,
// gpus) per socket. It panics on non-positive nodes or sockets because a
// resource graph without vertices is a caller bug.
//
// The graph is the unit of work behind every cluster deployment the study
// performs (one per environment × scale), and a 256-node CPU cluster
// holds ~30k leaf vertices — so construction sits on the executor's
// critical path. The whole graph is therefore carved out of three bulk
// allocations: one Resource arena for every vertex, one backing array
// every Children slice is a sub-slice of, and one string all vertex
// names alias (each name is a slice of the concatenation of all of
// them). The per-vertex strings and slices fmt/append construction
// would allocate — ~140k objects per full study — collapse to O(1)
// allocations per cluster, byte-identical names included.
func NewCluster(name string, nodes, socketsPerNode, coresPerSocket, gpusPerSocket int) *Resource {
	if nodes <= 0 || socketsPerNode <= 0 {
		panic(fmt.Sprintf("flux: invalid cluster shape %d nodes × %d sockets", nodes, socketsPerNode))
	}
	leavesPerSocket := coresPerSocket + gpusPerSocket
	sockets := nodes * socketsPerNode
	leaves := sockets * leavesPerSocket
	total := 1 + nodes + sockets + leaves

	arena := make([]Resource, total)
	childBacking := make([]*Resource, nodes+sockets+leaves)
	// Every non-root name, concatenated in construction order into one
	// exactly-sized builder (String() hands over the backing array
	// without a copy, so there is no oversized transient and no retained
	// slack); ends[i] is the end offset of vertex i's name (vertex 0 —
	// the root — keeps the caller's name string).
	var nameBuf strings.Builder
	nameBuf.Grow(clusterNameBytes(len(name), nodes, socketsPerNode, coresPerSocket, gpusPerSocket))
	ends := make([]int32, total)

	cur := 0 // childBacking cursor
	carve := func(n int) []*Resource {
		s := childBacking[cur : cur+n : cur+n]
		cur += n
		return s
	}

	cluster := &arena[0]
	cluster.Type, cluster.Name = ClusterRes, name
	cluster.Children = carve(nodes)[:0]

	idx := 1
	buf := make([]byte, 0, len(name)+32) // scratch for the vertex under construction
	for n := 0; n < nodes; n++ {
		// name + "-node%03d"
		buf = append(buf[:0], name...)
		buf = append(buf, "-node"...)
		if n < 100 {
			buf = append(buf, '0')
			if n < 10 {
				buf = append(buf, '0')
			}
		}
		buf = strconv.AppendInt(buf, int64(n), 10)
		node := &arena[idx]
		nameBuf.Write(buf)
		ends[idx] = int32(nameBuf.Len())
		idx++
		node.Type = NodeRes
		node.Children = carve(socketsPerNode)[:0]
		nodeLen := len(buf)
		for s := 0; s < socketsPerNode; s++ {
			buf = append(buf[:nodeLen], "-s"...)
			buf = strconv.AppendInt(buf, int64(s), 10)
			socket := &arena[idx]
			nameBuf.Write(buf)
			ends[idx] = int32(nameBuf.Len())
			idx++
			socket.Type = SocketRes
			socket.Children = carve(leavesPerSocket)[:0]
			socketLen := len(buf)
			for c := 0; c < coresPerSocket; c++ {
				buf = append(buf[:socketLen], "-c"...)
				buf = strconv.AppendInt(buf, int64(c), 10)
				leaf := &arena[idx]
				nameBuf.Write(buf)
				ends[idx] = int32(nameBuf.Len())
				idx++
				leaf.Type = CoreRes
				socket.Children = append(socket.Children, leaf)
			}
			for g := 0; g < gpusPerSocket; g++ {
				buf = append(buf[:socketLen], "-g"...)
				buf = strconv.AppendInt(buf, int64(g), 10)
				leaf := &arena[idx]
				nameBuf.Write(buf)
				ends[idx] = int32(nameBuf.Len())
				idx++
				leaf.Type = GPURes
				socket.Children = append(socket.Children, leaf)
			}
			node.Children = append(node.Children, socket)
		}
		cluster.Children = append(cluster.Children, node)
	}

	allNames := nameBuf.String()
	for i := 1; i < total; i++ {
		arena[i].Name = allNames[ends[i-1]:ends[i]]
	}
	return cluster
}

// clusterNameBytes computes the exact byte length of every non-root
// vertex name in a uniform cluster, concatenated — so NewCluster's name
// builder never over- or under-grows. Name shapes: node = name +
// "-node%03d", socket = node + "-s%d", leaf = socket + "-c%d"/"-g%d".
func clusterNameBytes(nameLen, nodes, socketsPerNode, coresPerSocket, gpusPerSocket int) int {
	leavesPerSocket := coresPerSocket + gpusPerSocket
	sdig := digitsSum(socketsPerNode)
	cdig := digitsSum(coresPerSocket)
	gdig := digitsSum(gpusPerSocket)
	total := 0
	for n := 0; n < nodes; n++ {
		nl := nameLen + 5 + 3 // "-node" + %03d
		if n >= 1000 {
			nl = nameLen + 5 + digits(n)
		}
		// Socket names for this node sum to S; each of the node's
		// leavesPerSocket×socketsPerNode leaves repeats its socket's name
		// plus a 2-byte "-c"/"-g" tag and its own index digits.
		s := socketsPerNode*(nl+2) + sdig
		total += nl + s + leavesPerSocket*s + socketsPerNode*(2*leavesPerSocket+cdig+gdig)
	}
	return total
}

// digits returns the decimal width of a non-negative int.
func digits(i int) int {
	n := 1
	for i >= 10 {
		i /= 10
		n++
	}
	return n
}

// digitsSum returns Σ digits(i) for i in [0, k).
func digitsSum(k int) int {
	s := 0
	for i := 0; i < k; i++ {
		s += digits(i)
	}
	return s
}

// Walk visits every vertex depth-first.
func (r *Resource) Walk(visit func(*Resource)) {
	visit(r)
	for _, c := range r.Children {
		c.Walk(visit)
	}
}

// Count returns the number of vertices of a type under r (inclusive).
func (r *Resource) Count(t ResourceType) int {
	n := 0
	r.Walk(func(v *Resource) {
		if v.Type == t {
			n++
		}
	})
	return n
}

// CountFree returns unallocated vertices of a type under r. A vertex is
// considered allocated if it or any ancestor holds an allocation; callers
// must pass the graph root for exact results.
func (r *Resource) CountFree(t ResourceType) int {
	n := 0
	var walk func(v *Resource, busy bool)
	walk = func(v *Resource, busy bool) {
		busy = busy || v.allocatedTo != 0
		if v.Type == t && !busy {
			n++
		}
		for _, c := range v.Children {
			walk(c, busy)
		}
	}
	walk(r, false)
	return n
}

// nodesUnder returns the node vertices under r.
func (r *Resource) nodesUnder() []*Resource {
	var out []*Resource
	r.Walk(func(v *Resource) {
		if v.Type == NodeRes {
			out = append(out, v)
		}
	})
	return out
}

// String renders the graph as an indented tree (for diagnostics).
func (r *Resource) String() string {
	var b strings.Builder
	var walk func(v *Resource, depth int)
	walk = func(v *Resource, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), v.Type, v.Name)
		if v.allocatedTo != 0 {
			fmt.Fprintf(&b, " [job %d]", v.allocatedTo)
		}
		b.WriteByte('\n')
		// Compress leaf fan-out: print counts instead of thousands of cores.
		var leafCores, leafGPUs int
		for _, c := range v.Children {
			switch {
			case c.Type == CoreRes:
				leafCores++
			case c.Type == GPURes:
				leafGPUs++
			default:
				walk(c, depth+1)
			}
		}
		if leafCores > 0 || leafGPUs > 0 {
			fmt.Fprintf(&b, "%s%d cores, %d gpus\n", strings.Repeat("  ", depth+1), leafCores, leafGPUs)
		}
	}
	walk(r, 0)
	return b.String()
}
