package flux

import (
	"errors"
	"fmt"
	"sort"
)

// Instance is one Flux instance: a scheduler over a resource graph.
// Instances nest — Spawn carves a child instance out of an allocation,
// which is how the Flux Operator turns a Kubernetes node pool into a
// MiniCluster, and how batch jobs subdivide their own allocations.
type Instance struct {
	Name   string
	Root   *Resource
	parent *Instance
	depth  int

	nextJobID uint64
	allocs    map[uint64]*Allocation
	queue     []*pending
}

type pending struct {
	id   uint64
	spec Jobspec
}

// ErrBusy is returned when resources exist but are currently allocated.
var ErrBusy = errors.New("flux: insufficient free resources (queued)")

// NewInstance creates a root instance over a resource graph.
func NewInstance(name string, root *Resource) *Instance {
	return &Instance{Name: name, Root: root, allocs: make(map[uint64]*Allocation)}
}

// Depth reports how many ancestors the instance has (0 for the root).
func (in *Instance) Depth() int { return in.depth }

// Parent returns the enclosing instance, nil for the root.
func (in *Instance) Parent() *Instance { return in.parent }

// Pending reports queued (unallocated) jobspecs.
func (in *Instance) Pending() int { return len(in.queue) }

// Allocations returns the live allocations sorted by job ID.
func (in *Instance) Allocations() []*Allocation {
	out := make([]*Allocation, 0, len(in.allocs))
	for _, a := range in.allocs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Submit validates and tries to allocate a jobspec. If the graph can
// satisfy it but not right now, the job queues and ErrBusy is returned
// with a job ID; Release later promotes queued jobs FIFO.
func (in *Instance) Submit(spec Jobspec) (uint64, *Allocation, error) {
	if err := spec.Validate(); err != nil {
		return 0, nil, err
	}
	if !in.satisfiable(spec) {
		return 0, nil, fmt.Errorf("%w: %d×(%dc,%dg) on %d cores / %d gpus",
			ErrUnsatisfiable, spec.NumSlots, spec.CoresPerSlot, spec.GPUsPerSlot,
			in.Root.Count(CoreRes), in.Root.Count(GPURes))
	}
	in.nextJobID++
	id := in.nextJobID
	alloc, ok := in.tryAllocate(id, spec)
	if !ok {
		in.enqueue(&pending{id: id, spec: spec})
		return id, nil, ErrBusy
	}
	in.allocs[id] = alloc
	return id, alloc, nil
}

// enqueue inserts a pending job in (priority desc, submission) order —
// Flux's urgency semantics.
func (in *Instance) enqueue(p *pending) {
	at := len(in.queue)
	for i, q := range in.queue {
		if p.spec.Priority > q.spec.Priority {
			at = i
			break
		}
	}
	in.queue = append(in.queue, nil)
	copy(in.queue[at+1:], in.queue[at:])
	in.queue[at] = p
}

// Release frees a job's resources and promotes queued jobs FIFO. It
// returns the allocations started by the release.
func (in *Instance) Release(id uint64) ([]*Allocation, error) {
	alloc, ok := in.allocs[id]
	if !ok {
		return nil, fmt.Errorf("flux: job %d has no live allocation", id)
	}
	for _, slot := range alloc.Slots {
		for _, v := range slot {
			v.allocatedTo = 0
		}
	}
	delete(in.allocs, id)

	var started []*Allocation
	remaining := in.queue[:0]
	for _, p := range in.queue {
		if a, ok := in.tryAllocate(p.id, p.spec); ok {
			in.allocs[p.id] = a
			started = append(started, a)
		} else {
			remaining = append(remaining, p)
		}
	}
	in.queue = remaining
	return started, nil
}

// Spawn creates a nested instance over an allocation's nodes — the child
// sees whole nodes (the MiniCluster pattern grants node-exclusive slots).
func (in *Instance) Spawn(name string, alloc *Allocation) (*Instance, error) {
	if len(alloc.Nodes) == 0 {
		return nil, fmt.Errorf("flux: allocation for job %d holds no whole nodes", alloc.JobID)
	}
	sub := &Resource{Type: ClusterRes, Name: name}
	// The child gets fresh vertices mirroring the granted nodes, so its
	// allocations never race the parent's bookkeeping.
	for _, n := range alloc.Nodes {
		sub.Children = append(sub.Children, cloneTree(n))
	}
	return &Instance{Name: name, Root: sub, parent: in, depth: in.depth + 1,
		allocs: make(map[uint64]*Allocation)}, nil
}

// cloneTree deep-copies a resource subtree with allocations cleared.
func cloneTree(r *Resource) *Resource {
	c := &Resource{Type: r.Type, Name: r.Name}
	if len(r.Children) > 0 {
		c.Children = make([]*Resource, 0, len(r.Children))
		for _, ch := range r.Children {
			c.Children = append(c.Children, cloneTree(ch))
		}
	}
	return c
}

// satisfiable checks whether the spec could ever fit the whole graph.
func (in *Instance) satisfiable(spec Jobspec) bool {
	if spec.NodeExclusive {
		// Need NumSlots nodes each big enough for one slot.
		fit := 0
		for _, n := range in.Root.nodesUnder() {
			if n.Count(CoreRes) >= spec.CoresPerSlot && n.Count(GPURes) >= spec.GPUsPerSlot {
				fit++
			}
		}
		return fit >= spec.NumSlots
	}
	return in.Root.Count(CoreRes) >= spec.TotalCores() &&
		in.Root.Count(GPURes) >= spec.TotalGPUs()
}

// tryAllocate attempts a first-fit placement of every slot.
func (in *Instance) tryAllocate(id uint64, spec Jobspec) (*Allocation, bool) {
	alloc := &Allocation{JobID: id, Spec: spec}
	var claimed []*Resource
	undo := func() {
		for _, v := range claimed {
			v.allocatedTo = 0
		}
	}

	nodes := in.Root.nodesUnder()
	nodeUsed := map[*Resource]bool{}
	for slot := 0; slot < spec.NumSlots; slot++ {
		placed := false
		for _, node := range nodes {
			if node.allocatedTo != 0 {
				continue
			}
			if spec.NodeExclusive && nodeUsed[node] {
				continue
			}
			cores := freeLeaves(node, CoreRes, spec.CoresPerSlot)
			gpus := freeLeaves(node, GPURes, spec.GPUsPerSlot)
			if cores == nil || gpus == nil {
				continue
			}
			vertices := make([]*Resource, 0, len(cores)+len(gpus)+1)
			vertices = append(vertices, cores...)
			vertices = append(vertices, gpus...)
			if spec.NodeExclusive {
				// Claim the whole node vertex: nothing else may co-tenant.
				node.allocatedTo = id
				claimed = append(claimed, node)
				vertices = append(vertices, node)
			}
			for _, v := range vertices {
				if v != node {
					v.allocatedTo = id
					claimed = append(claimed, v)
				}
			}
			alloc.Slots = append(alloc.Slots, vertices)
			if !nodeUsed[node] {
				nodeUsed[node] = true
				alloc.Nodes = append(alloc.Nodes, node)
			}
			placed = true
			break
		}
		if !placed {
			undo()
			return nil, false
		}
	}
	return alloc, true
}

// freeLeaves collects n free leaves of a type under a node, or nil if
// fewer exist.
func freeLeaves(node *Resource, t ResourceType, n int) []*Resource {
	if n == 0 {
		return []*Resource{}
	}
	out := make([]*Resource, 0, n)
	var walk func(v *Resource, busy bool)
	walk = func(v *Resource, busy bool) {
		if len(out) >= n {
			return
		}
		busy = busy || v.allocatedTo != 0
		if v.Type == t && !busy {
			out = append(out, v)
		}
		for _, c := range v.Children {
			walk(c, busy)
		}
	}
	walk(node, false)
	if len(out) < n {
		return nil
	}
	return out[:n]
}
