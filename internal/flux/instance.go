package flux

import (
	"errors"
	"fmt"
	"sort"
)

// Instance is one Flux instance: a scheduler over a resource graph.
// Instances nest — Spawn carves a child instance out of an allocation,
// which is how the Flux Operator turns a Kubernetes node pool into a
// MiniCluster, and how batch jobs subdivide their own allocations.
type Instance struct {
	Name   string
	Root   *Resource
	parent *Instance
	depth  int

	nextJobID uint64
	allocs    map[uint64]*Allocation
	queue     []*pending

	// Allocation scratch, reused across Submit/Release cycles so the
	// matcher's candidate walks stop allocating. The graph's vertex set is
	// immutable after construction (allocations only flip allocatedTo), so
	// the node list is computed once; the leaf/claim buffers only ever
	// alias in-flight search state — durable outputs are copied out.
	nodes        []*Resource
	coreScratch  []*Resource
	gpuScratch   []*Resource
	claimScratch []*Resource
	nodeEpochs   []uint32 // per-node "used in this allocation" marks
	epoch        uint32
}

type pending struct {
	id   uint64
	spec Jobspec
}

// ErrBusy is returned when resources exist but are currently allocated.
var ErrBusy = errors.New("flux: insufficient free resources (queued)")

// NewInstance creates a root instance over a resource graph.
func NewInstance(name string, root *Resource) *Instance {
	return &Instance{Name: name, Root: root, allocs: make(map[uint64]*Allocation)}
}

// Depth reports how many ancestors the instance has (0 for the root).
func (in *Instance) Depth() int { return in.depth }

// Parent returns the enclosing instance, nil for the root.
func (in *Instance) Parent() *Instance { return in.parent }

// Pending reports queued (unallocated) jobspecs.
func (in *Instance) Pending() int { return len(in.queue) }

// Allocations returns the live allocations sorted by job ID.
func (in *Instance) Allocations() []*Allocation {
	out := make([]*Allocation, 0, len(in.allocs))
	for _, a := range in.allocs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Submit validates and tries to allocate a jobspec. If the graph can
// satisfy it but not right now, the job queues and ErrBusy is returned
// with a job ID; Release later promotes queued jobs FIFO.
func (in *Instance) Submit(spec Jobspec) (uint64, *Allocation, error) {
	if err := spec.Validate(); err != nil {
		return 0, nil, err
	}
	if !in.satisfiable(spec) {
		return 0, nil, fmt.Errorf("%w: %d×(%dc,%dg) on %d cores / %d gpus",
			ErrUnsatisfiable, spec.NumSlots, spec.CoresPerSlot, spec.GPUsPerSlot,
			in.Root.Count(CoreRes), in.Root.Count(GPURes))
	}
	in.nextJobID++
	id := in.nextJobID
	alloc, ok := in.tryAllocate(id, spec)
	if !ok {
		in.enqueue(&pending{id: id, spec: spec})
		return id, nil, ErrBusy
	}
	in.allocs[id] = alloc
	return id, alloc, nil
}

// enqueue inserts a pending job in (priority desc, submission) order —
// Flux's urgency semantics.
func (in *Instance) enqueue(p *pending) {
	at := len(in.queue)
	for i, q := range in.queue {
		if p.spec.Priority > q.spec.Priority {
			at = i
			break
		}
	}
	in.queue = append(in.queue, nil)
	copy(in.queue[at+1:], in.queue[at:])
	in.queue[at] = p
}

// Release frees a job's resources and promotes queued jobs FIFO. It
// returns the allocations started by the release.
func (in *Instance) Release(id uint64) ([]*Allocation, error) {
	alloc, ok := in.allocs[id]
	if !ok {
		return nil, fmt.Errorf("flux: job %d has no live allocation", id)
	}
	for _, slot := range alloc.Slots {
		for _, v := range slot {
			v.allocatedTo = 0
		}
	}
	delete(in.allocs, id)

	var started []*Allocation
	remaining := in.queue[:0]
	for _, p := range in.queue {
		if a, ok := in.tryAllocate(p.id, p.spec); ok {
			in.allocs[p.id] = a
			started = append(started, a)
		} else {
			remaining = append(remaining, p)
		}
	}
	in.queue = remaining
	return started, nil
}

// Spawn creates a nested instance over an allocation's nodes — the child
// sees whole nodes (the MiniCluster pattern grants node-exclusive slots).
func (in *Instance) Spawn(name string, alloc *Allocation) (*Instance, error) {
	if len(alloc.Nodes) == 0 {
		return nil, fmt.Errorf("flux: allocation for job %d holds no whole nodes", alloc.JobID)
	}
	// The child gets fresh vertices mirroring the granted nodes, so its
	// allocations never race the parent's bookkeeping. Like NewCluster,
	// the clone is carved from one Resource arena and one Children
	// backing array (names are shared string headers), so spawning a
	// MiniCluster costs O(1) allocations instead of one per vertex.
	total := 0
	for _, n := range alloc.Nodes {
		total += countVertices(n)
	}
	arena := make([]Resource, total)
	childBacking := make([]*Resource, total)
	c := &cloner{arena: arena, backing: childBacking}

	sub := &Resource{Type: ClusterRes, Name: name}
	sub.Children = childBacking[0:0:len(alloc.Nodes)]
	c.cur = len(alloc.Nodes)
	for _, n := range alloc.Nodes {
		sub.Children = append(sub.Children, c.clone(n))
	}
	return &Instance{Name: name, Root: sub, parent: in, depth: in.depth + 1,
		allocs: make(map[uint64]*Allocation)}, nil
}

// countVertices sizes a subtree for the clone arena.
func countVertices(r *Resource) int {
	n := 1
	for _, c := range r.Children {
		n += countVertices(c)
	}
	return n
}

// cloner deep-copies resource subtrees into a pre-sized arena with
// allocations cleared.
type cloner struct {
	arena   []Resource
	backing []*Resource
	next    int // arena cursor
	cur     int // backing cursor
}

func (c *cloner) clone(r *Resource) *Resource {
	v := &c.arena[c.next]
	c.next++
	v.Type, v.Name = r.Type, r.Name
	if n := len(r.Children); n > 0 {
		v.Children = c.backing[c.cur : c.cur : c.cur+n]
		c.cur += n
		for _, ch := range r.Children {
			v.Children = append(v.Children, c.clone(ch))
		}
	}
	return v
}

// nodesUnder returns the instance's node vertices, computed once: the
// vertex set of a graph never changes after construction, only the
// allocatedTo marks do.
func (in *Instance) nodesUnder() []*Resource {
	if in.nodes == nil {
		in.nodes = in.Root.nodesUnder()
		in.nodeEpochs = make([]uint32, len(in.nodes))
	}
	return in.nodes
}

// satisfiable checks whether the spec could ever fit the whole graph.
func (in *Instance) satisfiable(spec Jobspec) bool {
	if spec.NodeExclusive {
		// Need NumSlots nodes each big enough for one slot.
		fit := 0
		for _, n := range in.nodesUnder() {
			if n.Count(CoreRes) >= spec.CoresPerSlot && n.Count(GPURes) >= spec.GPUsPerSlot {
				fit++
			}
		}
		return fit >= spec.NumSlots
	}
	return in.Root.Count(CoreRes) >= spec.TotalCores() &&
		in.Root.Count(GPURes) >= spec.TotalGPUs()
}

// tryAllocate attempts a first-fit placement of every slot. The
// candidate search runs entirely on instance-owned scratch (leaf
// buffers, claim list, node-used epochs); only the granted slots are
// copied into durable exact-size slices on the returned Allocation.
func (in *Instance) tryAllocate(id uint64, spec Jobspec) (*Allocation, bool) {
	alloc := &Allocation{JobID: id, Spec: spec}
	nodes := in.nodesUnder()
	in.epoch++
	claimed := in.claimScratch[:0]

	// One exact-size backing holds every slot's vertex list: slots are
	// uniform (the spec's shape plus the node vertex when exclusive), so
	// a successful allocation costs two slice allocations, not NumSlots.
	slotSize := spec.CoresPerSlot + spec.GPUsPerSlot
	if spec.NodeExclusive {
		slotSize++
	}
	vertBacking := make([]*Resource, 0, spec.NumSlots*slotSize)
	alloc.Slots = make([][]*Resource, 0, spec.NumSlots)

	for slot := 0; slot < spec.NumSlots; slot++ {
		placed := false
		for ni, node := range nodes {
			if node.allocatedTo != 0 {
				continue
			}
			nodeUsed := in.nodeEpochs[ni] == in.epoch
			if spec.NodeExclusive && nodeUsed {
				continue
			}
			cores := in.coreScratch[:0]
			cores, ok := freeLeaves(node, CoreRes, spec.CoresPerSlot, cores)
			in.coreScratch = cores
			if !ok {
				continue
			}
			gpus := in.gpuScratch[:0]
			gpus, ok = freeLeaves(node, GPURes, spec.GPUsPerSlot, gpus)
			in.gpuScratch = gpus
			if !ok {
				continue
			}
			start := len(vertBacking)
			vertBacking = append(vertBacking, cores...)
			vertBacking = append(vertBacking, gpus...)
			if spec.NodeExclusive {
				// Claim the whole node vertex: nothing else may co-tenant.
				node.allocatedTo = id
				claimed = append(claimed, node)
				vertBacking = append(vertBacking, node)
			}
			vertices := vertBacking[start:len(vertBacking):len(vertBacking)]
			for _, v := range vertices {
				if v != node {
					v.allocatedTo = id
					claimed = append(claimed, v)
				}
			}
			alloc.Slots = append(alloc.Slots, vertices)
			if !nodeUsed {
				in.nodeEpochs[ni] = in.epoch
				alloc.Nodes = append(alloc.Nodes, node)
			}
			placed = true
			break
		}
		if !placed {
			for _, v := range claimed {
				v.allocatedTo = 0
			}
			in.claimScratch = claimed
			return nil, false
		}
	}
	in.claimScratch = claimed
	return alloc, true
}

// freeLeaves appends up to n free leaves of a type under a node to out.
// The boolean reports whether n were found; fewer means the node cannot
// host the slot. n == 0 trivially succeeds with no leaves.
func freeLeaves(node *Resource, t ResourceType, n int, out []*Resource) ([]*Resource, bool) {
	if n == 0 {
		return out, true
	}
	out = collectFreeLeaves(node, t, n, false, out)
	return out, len(out) >= n
}

// collectFreeLeaves is freeLeaves' recursive walk, a plain function so
// the hot path allocates no closure.
func collectFreeLeaves(v *Resource, t ResourceType, n int, busy bool, out []*Resource) []*Resource {
	if len(out) >= n {
		return out
	}
	busy = busy || v.allocatedTo != 0
	if v.Type == t && !busy {
		out = append(out, v)
	}
	for _, c := range v.Children {
		out = collectFreeLeaves(c, t, n, busy, out)
		if len(out) >= n {
			break
		}
	}
	return out
}
