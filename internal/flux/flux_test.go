package flux

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// hpc6a builds a graph shaped like the study's AWS CPU nodes.
func hpc6a(nodes int) *Resource { return NewCluster("hpc6a", nodes, 2, 48, 0) }

// nd40 builds a graph shaped like the study's Azure GPU nodes.
func nd40(nodes int) *Resource { return NewCluster("nd40", nodes, 2, 24, 4) }

func TestClusterGraphCounts(t *testing.T) {
	g := nd40(32)
	if got := g.Count(NodeRes); got != 32 {
		t.Fatalf("nodes = %d", got)
	}
	if got := g.Count(CoreRes); got != 32*48 {
		t.Fatalf("cores = %d", got)
	}
	if got := g.Count(GPURes); got != 32*8 {
		t.Fatalf("gpus = %d", got)
	}
	if got := g.CountFree(CoreRes); got != g.Count(CoreRes) {
		t.Fatalf("fresh graph should be fully free")
	}
}

func TestNewClusterPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewCluster("bad", 0, 1, 1, 0)
}

func TestJobspecValidate(t *testing.T) {
	good := Jobspec{Name: "ok", NumSlots: 4, CoresPerSlot: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []Jobspec{
		{Name: "zero-slots", NumSlots: 0, CoresPerSlot: 1},
		{Name: "negative", NumSlots: 1, CoresPerSlot: -1},
		{Name: "empty-slot", NumSlots: 1},
		{Name: "negative-dur", NumSlots: 1, CoresPerSlot: 1, Duration: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %q should be invalid", bad.Name)
		}
	}
}

func TestSubmitAllocateRelease(t *testing.T) {
	in := NewInstance("root", hpc6a(4))
	id, alloc, err := in.Submit(Jobspec{Name: "mpi", NumSlots: 8, CoresPerSlot: 48})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if alloc == nil || len(alloc.Slots) != 8 {
		t.Fatalf("allocation shape wrong: %+v", alloc)
	}
	// 8 slots × 48 cores = all 384 cores on 4 nodes.
	if free := in.Root.CountFree(CoreRes); free != 0 {
		t.Fatalf("free cores = %d, want 0", free)
	}
	if alloc.NodeCount() != 4 {
		t.Fatalf("allocation spans %d nodes, want 4", alloc.NodeCount())
	}
	if _, err := in.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if free := in.Root.CountFree(CoreRes); free != 384 {
		t.Fatalf("after release free cores = %d, want 384", free)
	}
	if _, err := in.Release(id); err == nil {
		t.Fatalf("double release must fail")
	}
}

func TestUnsatisfiableRejectedImmediately(t *testing.T) {
	in := NewInstance("root", hpc6a(2))
	_, _, err := in.Submit(Jobspec{Name: "huge", NumSlots: 1000, CoresPerSlot: 48})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	// GPUs on a CPU-only graph.
	_, _, err = in.Submit(Jobspec{Name: "gpu", NumSlots: 1, GPUsPerSlot: 1})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable for GPU ask", err)
	}
}

func TestQueueingAndFIFOPromotion(t *testing.T) {
	in := NewInstance("root", hpc6a(2))
	full := Jobspec{Name: "full", NumSlots: 2, CoresPerSlot: 96, NodeExclusive: true}
	id1, _, err := in.Submit(full)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, _, err = in.Submit(full)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("second submit should queue: %v", err)
	}
	_, _, err = in.Submit(full)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("third submit should queue: %v", err)
	}
	if in.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", in.Pending())
	}
	started, err := in.Release(id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 {
		t.Fatalf("release should start exactly one queued job, started %d", len(started))
	}
	if in.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", in.Pending())
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	in := NewInstance("root", hpc6a(2))
	full := Jobspec{Name: "full", NumSlots: 2, CoresPerSlot: 96, NodeExclusive: true}
	idRun, _, err := in.Submit(full)
	if err != nil {
		t.Fatal(err)
	}
	// Queue a default-priority job, then an urgent one.
	low := full
	low.Name = "low"
	if _, _, err := in.Submit(low); !errors.Is(err, ErrBusy) {
		t.Fatal(err)
	}
	urgent := full
	urgent.Name = "urgent"
	urgent.Priority = 10
	if _, _, err := in.Submit(urgent); !errors.Is(err, ErrBusy) {
		t.Fatal(err)
	}
	started, err := in.Release(idRun)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].Spec.Name != "urgent" {
		t.Fatalf("urgent job should start first: %+v", started)
	}
	// Equal priorities stay FIFO.
	in2 := NewInstance("root2", hpc6a(2))
	id1, _, _ := in2.Submit(full)
	a := full
	a.Name = "first"
	b := full
	b.Name = "second"
	in2.Submit(a)
	in2.Submit(b)
	started, _ = in2.Release(id1)
	if len(started) != 1 || started[0].Spec.Name != "first" {
		t.Fatalf("equal priority should be FIFO: %+v", started)
	}
}

func TestNodeExclusiveNoCoTenancy(t *testing.T) {
	in := NewInstance("root", hpc6a(2))
	_, a, err := in.Submit(Jobspec{Name: "excl", NumSlots: 1, CoresPerSlot: 1, NodeExclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.NodeCount() != 1 {
		t.Fatalf("exclusive slot should claim one node")
	}
	// A second job needing 96+ cores can only use the other node; asking
	// for more than one node's worth must queue even though core totals
	// would fit if co-tenancy were allowed.
	_, _, err = in.Submit(Jobspec{Name: "big", NumSlots: 3, CoresPerSlot: 48})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("co-tenancy on the exclusive node must be denied: %v", err)
	}
}

func TestGPUSlots(t *testing.T) {
	in := NewInstance("root", nd40(4))
	_, a, err := in.Submit(Jobspec{Name: "gpujob", NumSlots: 32, CoresPerSlot: 4, GPUsPerSlot: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if free := in.Root.CountFree(GPURes); free != 0 {
		t.Fatalf("all 32 GPUs should be claimed, %d free", free)
	}
	if a.NodeCount() != 4 {
		t.Fatalf("allocation spans %d nodes, want 4", a.NodeCount())
	}
}

func TestHierarchicalSpawn(t *testing.T) {
	// The MiniCluster pattern: allocate whole nodes, spawn a child
	// instance over them, schedule inside the child.
	root := NewInstance("k8s", nd40(8))
	_, alloc, err := root.Submit(Jobspec{Name: "minicluster", NumSlots: 4, CoresPerSlot: 48, GPUsPerSlot: 8, NodeExclusive: true})
	if err != nil {
		t.Fatalf("MiniCluster allocation: %v", err)
	}
	child, err := root.Spawn("minicluster-0", alloc)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if child.Depth() != 1 || child.Parent() != root {
		t.Fatalf("child lineage wrong")
	}
	if got := child.Root.Count(NodeRes); got != 4 {
		t.Fatalf("child sees %d nodes, want 4", got)
	}
	// Child schedules its own work without touching the parent graph.
	_, _, err = child.Submit(Jobspec{Name: "lammps", NumSlots: 32, CoresPerSlot: 4, GPUsPerSlot: 1})
	if err != nil {
		t.Fatalf("child Submit: %v", err)
	}
	if free := root.Root.CountFree(GPURes); free != 32 {
		t.Fatalf("parent bookkeeping disturbed: %d free GPUs, want 32 (other 4 nodes)", free)
	}
	// Grandchild: instances nest arbitrarily deep.
	_, alloc2, err := child.Submit(Jobspec{Name: "sub", NumSlots: 1, CoresPerSlot: 48, NodeExclusive: true})
	if errors.Is(err, ErrBusy) {
		t.Skipf("no free node for grandchild in this layout")
	}
	if err != nil {
		t.Fatal(err)
	}
	grand, err := child.Spawn("nested", alloc2)
	if err != nil {
		t.Fatal(err)
	}
	if grand.Depth() != 2 {
		t.Fatalf("grandchild depth = %d", grand.Depth())
	}
}

func TestSpawnNeedsNodes(t *testing.T) {
	in := NewInstance("root", hpc6a(1))
	if _, err := in.Spawn("x", &Allocation{}); err == nil {
		t.Fatalf("spawning over an empty allocation must fail")
	}
}

func TestAllocationsSorted(t *testing.T) {
	in := NewInstance("root", hpc6a(4))
	for i := 0; i < 4; i++ {
		if _, _, err := in.Submit(Jobspec{Name: "j", NumSlots: 1, CoresPerSlot: 96, NodeExclusive: true}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := in.Allocations()
	for i := 1; i < len(allocs); i++ {
		if allocs[i].JobID <= allocs[i-1].JobID {
			t.Fatalf("allocations not sorted by job ID")
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := nd40(1)
	out := g.String()
	if !strings.Contains(out, "cluster nd40") || !strings.Contains(out, "24 cores, 4 gpus") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// Property: for any sequence of submits and releases, no vertex is ever
// allocated to two jobs, and free counts never go negative.
func TestAllocationConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		in := NewInstance("prop", nd40(4))
		totalCores := in.Root.Count(CoreRes)
		totalGPUs := in.Root.Count(GPURes)
		var live []uint64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				id := live[0]
				live = live[1:]
				if _, err := in.Release(id); err != nil {
					return false
				}
			} else {
				slots := int(op%4) + 1
				id, alloc, err := in.Submit(Jobspec{Name: "p", NumSlots: slots, CoresPerSlot: 8, GPUsPerSlot: 1})
				if err == nil && alloc != nil {
					live = append(live, id)
				} else if !errors.Is(err, ErrBusy) && err != nil {
					return false
				}
			}
			// Conservation: free + allocated == total, and no double claims.
			claimed := map[*Resource]bool{}
			for _, a := range in.Allocations() {
				for _, slot := range a.Slots {
					for _, v := range slot {
						if claimed[v] {
							return false // double allocation
						}
						claimed[v] = true
					}
				}
			}
			if in.Root.CountFree(CoreRes) < 0 || in.Root.CountFree(CoreRes) > totalCores {
				return false
			}
			if in.Root.CountFree(GPURes) < 0 || in.Root.CountFree(GPURes) > totalGPUs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
