package flux

import (
	"errors"
	"fmt"
	"time"
)

// Jobspec is a declarative resource request, modelled on Flux's canonical
// jobspec: N slots, each slot needing cores and GPUs, slots packed onto
// nodes either exclusively or shared.
type Jobspec struct {
	Name string
	// NumSlots is the number of task slots (typically MPI ranks).
	NumSlots int
	// CoresPerSlot and GPUsPerSlot shape one slot.
	CoresPerSlot int
	GPUsPerSlot  int
	// NodeExclusive requests whole nodes (no co-tenancy).
	NodeExclusive bool
	// Duration is the requested walltime.
	Duration time.Duration
	// Priority orders queued jobs: higher starts first (Flux's urgency).
	// Equal priorities keep FIFO order. Default 0.
	Priority int
}

// Validate checks the jobspec for structural errors.
func (j Jobspec) Validate() error {
	switch {
	case j.NumSlots <= 0:
		return fmt.Errorf("flux: jobspec %q: NumSlots must be positive, got %d", j.Name, j.NumSlots)
	case j.CoresPerSlot < 0 || j.GPUsPerSlot < 0:
		return fmt.Errorf("flux: jobspec %q: negative slot shape", j.Name)
	case j.CoresPerSlot == 0 && j.GPUsPerSlot == 0:
		return fmt.Errorf("flux: jobspec %q: slot requests no resources", j.Name)
	case j.Duration < 0:
		return fmt.Errorf("flux: jobspec %q: negative duration", j.Name)
	}
	return nil
}

// TotalCores and TotalGPUs are the aggregate ask.
func (j Jobspec) TotalCores() int { return j.NumSlots * j.CoresPerSlot }
func (j Jobspec) TotalGPUs() int  { return j.NumSlots * j.GPUsPerSlot }

// ErrUnsatisfiable is returned when a jobspec can never fit the graph.
var ErrUnsatisfiable = errors.New("flux: jobspec can never be satisfied by this instance")

// Allocation is a granted jobspec: the concrete vertices backing each slot.
type Allocation struct {
	JobID uint64
	Spec  Jobspec
	// Slots maps slot index → the resource vertices granted to it.
	Slots [][]*Resource
	// Nodes is the distinct set of nodes touched by the allocation.
	Nodes []*Resource
}

// NodeCount returns the number of distinct nodes in the allocation.
func (a *Allocation) NodeCount() int { return len(a.Nodes) }
