package flux

import "testing"

// Allocation-path performance: the operator allocates and releases
// MiniClusters for every study scale; keep the graph matcher cheap.

func BenchmarkSubmitRelease32Nodes(b *testing.B) {
	in := NewInstance("bench", NewCluster("nd40", 32, 2, 24, 4))
	spec := Jobspec{Name: "mc", NumSlots: 32, CoresPerSlot: 24, GPUsPerSlot: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := in.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubmitRelease256Nodes(b *testing.B) {
	in := NewInstance("bench", NewCluster("hpc6a", 256, 2, 48, 0))
	spec := Jobspec{Name: "job", NumSlots: 256, CoresPerSlot: 96, NodeExclusive: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := in.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountFree(b *testing.B) {
	g := NewCluster("hpc6a", 256, 2, 48, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountFree(CoreRes)
	}
}

func BenchmarkSpawnNested(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := NewInstance("bench", NewCluster("nd40", 8, 2, 24, 4))
		_, alloc, err := in.Submit(Jobspec{Name: "mc", NumSlots: 4, CoresPerSlot: 48, GPUsPerSlot: 8, NodeExclusive: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Spawn("child", alloc); err != nil {
			b.Fatal(err)
		}
	}
}
