package flux_test

import (
	"fmt"

	"cloudhpc/internal/flux"
)

// The MiniCluster pattern: allocate whole nodes from a Kubernetes-shaped
// resource graph, spawn a nested instance over them, and schedule MPI
// work inside it — Flux's hierarchical scheduling in miniature.
func Example_hierarchicalScheduling() {
	// 8 nodes × 2 sockets × (24 cores + 4 GPUs) — the Azure ND40rs shape.
	graph := flux.NewCluster("aks", 8, 2, 24, 4)
	root := flux.NewInstance("k8s-root", graph)

	_, alloc, err := root.Submit(flux.Jobspec{
		Name: "minicluster", NumSlots: 4,
		CoresPerSlot: 48, GPUsPerSlot: 8, NodeExclusive: true,
	})
	if err != nil {
		panic(err)
	}
	child, err := root.Spawn("minicluster-0", alloc)
	if err != nil {
		panic(err)
	}

	// The nested instance schedules 32 GPU ranks across its 4 nodes.
	_, ranks, err := child.Submit(flux.Jobspec{
		Name: "lammps", NumSlots: 32, CoresPerSlot: 4, GPUsPerSlot: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("MiniCluster: %d nodes; LAMMPS spans %d nodes, %d slots\n",
		alloc.NodeCount(), ranks.NodeCount(), len(ranks.Slots))
	fmt.Printf("parent still has %d free GPUs\n", root.Root.CountFree(flux.GPURes))
	// Output:
	// MiniCluster: 4 nodes; LAMMPS spans 4 nodes, 32 slots
	// parent still has 32 free GPUs
}
