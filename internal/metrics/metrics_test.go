package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean = %v (n=%d), want 5 (8)", s.Mean, s.N)
	}
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138 (sample stddev)", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	t.Parallel()
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", z)
	}
	one := Summarize([]float64{42})
	if one.Mean != 42 || one.Stddev != 0 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	t.Parallel()
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip pathological inputs
			}
		}
		s := Summarize(vals)
		if len(vals) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAddKeepsSorted(t *testing.T) {
	t.Parallel()
	var s Series
	s.Add(64, Summary{Mean: 2})
	s.Add(32, Summary{Mean: 1})
	s.Add(128, Summary{Mean: 3})
	if s.Points[0].X != 32 || s.Points[2].X != 128 {
		t.Fatalf("points unsorted: %+v", s.Points)
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	t.Parallel()
	var s Series
	s.Add(32, Summary{Mean: 100})
	s.Add(64, Summary{Mean: 160})
	sp, err := s.Speedup(32, 64)
	if err != nil || math.Abs(sp-1.6) > 1e-9 {
		t.Fatalf("speedup = %v (%v), want 1.6", sp, err)
	}
	eff, err := s.ParallelEfficiency(32, 64)
	if err != nil || math.Abs(eff-0.8) > 1e-9 {
		t.Fatalf("efficiency = %v, want 0.8", eff)
	}
	if _, err := s.Speedup(32, 999); err == nil {
		t.Fatalf("missing point must error")
	}
	var zero Series
	zero.Add(1, Summary{Mean: 0})
	zero.Add(2, Summary{Mean: 5})
	if _, err := zero.Speedup(1, 2); err == nil {
		t.Fatalf("zero baseline must error")
	}
}

func TestFigureGetAndBestAt(t *testing.T) {
	t.Parallel()
	fig := Figure{Title: "t", HigherIsBetter: true}
	fig.Get("a").Add(32, Summary{Mean: 10})
	fig.Get("b").Add(32, Summary{Mean: 20})
	fig.Get("a").Add(64, Summary{Mean: 30}) // Get must return the same series
	if len(fig.Series) != 2 {
		t.Fatalf("Get created duplicates: %v", fig.Labels())
	}
	best, err := fig.BestAt(32)
	if err != nil || best != "b" {
		t.Fatalf("BestAt(32) = %q (%v), want b", best, err)
	}
	// Lower-is-better flips the winner.
	lower := Figure{HigherIsBetter: false}
	lower.Get("a").Add(32, Summary{Mean: 10})
	lower.Get("b").Add(32, Summary{Mean: 20})
	if best, _ := lower.BestAt(32); best != "a" {
		t.Fatalf("lower-is-better BestAt = %q, want a", best)
	}
	if _, err := fig.BestAt(999); err == nil {
		t.Fatalf("BestAt with no points must error")
	}
}

func TestInflectionDetection(t *testing.T) {
	t.Parallel()
	var s Series
	s.Add(32, Summary{Mean: 10})
	s.Add(64, Summary{Mean: 20})
	s.Add(128, Summary{Mean: 38})
	s.Add(256, Summary{Mean: 37}) // scaling stops here
	x, ok := s.Inflection(0.05)
	if !ok || x != 128 {
		t.Fatalf("inflection = %v (%v), want 128", x, ok)
	}
	var clean Series
	clean.Add(32, Summary{Mean: 10})
	clean.Add(64, Summary{Mean: 19})
	clean.Add(128, Summary{Mean: 37})
	if _, ok := clean.Inflection(0.05); ok {
		t.Fatalf("monotone series should report no inflection")
	}
	var zero Series
	zero.Add(1, Summary{Mean: 0})
	zero.Add(2, Summary{Mean: 5})
	if _, ok := zero.Inflection(0.05); ok {
		t.Fatalf("zero baseline must be skipped, not treated as inflection")
	}
}

func TestSeriesAt(t *testing.T) {
	t.Parallel()
	var s Series
	s.Add(4, Summary{Mean: 7})
	if v, ok := s.At(4); !ok || v.Mean != 7 {
		t.Fatalf("At(4) = %v %v", v, ok)
	}
	if _, ok := s.At(5); ok {
		t.Fatalf("At(5) should miss")
	}
}
