// Package metrics provides the small statistics toolkit the harness uses
// to aggregate figure-of-merit samples: mean/stddev summaries, labelled
// series for figures, and speedup/efficiency helpers for scaling analysis.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the mean ± standard deviation of a set of samples.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over samples. An empty input yields a zero
// Summary.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	min, max := samples[0], samples[0]
	for _, v := range samples {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(ss / float64(n-1))
	}
	return Summary{N: n, Mean: mean, Stddev: sd, Min: min, Max: max}
}

// String renders "mean ± stddev".
func (s Summary) String() string { return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Stddev) }

// Point is one (x, y) sample of a series, e.g. (nodes, FOM).
type Point struct {
	X float64
	Y Summary
}

// Series is a labelled line of a figure: one environment's FOM across
// scales.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point keeping X ascending.
func (s *Series) Add(x float64, y Summary) {
	s.Points = append(s.Points, Point{X: x, Y: y})
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// At returns the summary at x, with ok=false if absent.
func (s *Series) At(x float64) (Summary, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return Summary{}, false
}

// Speedup returns Y(x2)/Y(x1) for a higher-is-better series.
func (s *Series) Speedup(x1, x2 float64) (float64, error) {
	a, ok1 := s.At(x1)
	b, ok2 := s.At(x2)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("metrics: series %q missing points %v or %v", s.Label, x1, x2)
	}
	if a.Mean == 0 {
		return 0, fmt.Errorf("metrics: zero baseline at %v", x1)
	}
	return b.Mean / a.Mean, nil
}

// ParallelEfficiency returns speedup divided by the resource ratio.
func (s *Series) ParallelEfficiency(x1, x2 float64) (float64, error) {
	sp, err := s.Speedup(x1, x2)
	if err != nil {
		return 0, err
	}
	return sp / (x2 / x1), nil
}

// Figure is a set of series sharing axes — one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// HigherIsBetter records the FOM direction (false for Kripke grind
	// time and OSU latency).
	HigherIsBetter bool
	Series         []*Series
}

// Get returns the series with the label, creating it if needed.
func (f *Figure) Get(label string) *Series {
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// Labels returns the series labels in insertion order.
func (f *Figure) Labels() []string {
	out := make([]string, 0, len(f.Series))
	for _, s := range f.Series {
		out = append(out, s.Label)
	}
	return out
}

// Inflection returns the x value at which a higher-is-better series stops
// improving — the "strong scaling stopped" point of the paper's Figure 4
// (GKE between 128 and 256 nodes). The returned x is the last point that
// still improved on its predecessor by more than tol (relative); ok is
// false when the series improves all the way to its end.
func (s *Series) Inflection(tol float64) (float64, bool) {
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1].Y.Mean, s.Points[i].Y.Mean
		if prev <= 0 {
			continue
		}
		if cur < prev*(1+tol) {
			return s.Points[i-1].X, true
		}
	}
	return 0, false
}

// BestAt returns the label of the best series at x given the figure's FOM
// direction, ignoring series without a point at x.
func (f *Figure) BestAt(x float64) (string, error) {
	best := ""
	var bestV float64
	for _, s := range f.Series {
		y, ok := s.At(x)
		if !ok {
			continue
		}
		better := best == "" ||
			(f.HigherIsBetter && y.Mean > bestV) ||
			(!f.HigherIsBetter && y.Mean < bestV)
		if better {
			best, bestV = s.Label, y.Mean
		}
	}
	if best == "" {
		return "", fmt.Errorf("metrics: no series has a point at %v", x)
	}
	return best, nil
}
