package metrics

import (
	"strings"
	"testing"
)

// Edge coverage for the figure-aggregation helpers that feed
// core.Results.FigureFor — the remaining uncovered paths after the
// property tests in metrics_test.go.

func TestSummaryString(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "2.00") || !strings.Contains(str, "±") {
		t.Fatalf("Summary.String() = %q, want mean ± stddev", str)
	}
	if zero := (Summary{}).String(); !strings.Contains(zero, "0.00") {
		t.Fatalf("zero Summary renders %q", zero)
	}
}

func TestFigureLabelsInsertionOrder(t *testing.T) {
	t.Parallel()
	var f Figure
	if got := f.Labels(); len(got) != 0 {
		t.Fatalf("empty figure has labels %v", got)
	}
	f.Get("beta")
	f.Get("alpha")
	f.Get("beta") // existing series: no duplicate
	got := f.Labels()
	if len(got) != 2 || got[0] != "beta" || got[1] != "alpha" {
		t.Fatalf("Labels() = %v, want insertion order [beta alpha]", got)
	}
}

func TestParallelEfficiencyErrors(t *testing.T) {
	t.Parallel()
	var s Series
	s.Add(1, Summary{Mean: 10})
	// Missing second point propagates Speedup's error.
	if _, err := s.ParallelEfficiency(1, 2); err == nil {
		t.Fatal("missing point must error")
	}
	s.Add(2, Summary{Mean: 15})
	eff, err := s.ParallelEfficiency(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 0.75 {
		t.Fatalf("efficiency = %v, want 0.75 (1.5× speedup / 2× resources)", eff)
	}
	// Zero baseline propagates too.
	var z Series
	z.Add(1, Summary{Mean: 0})
	z.Add(2, Summary{Mean: 5})
	if _, err := z.ParallelEfficiency(1, 2); err == nil {
		t.Fatal("zero baseline must error")
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single-sample summary %+v", s)
	}
}
