// Package containers simulates the study's software-build substrate: base
// images with pinned Flux/OpenMPI stacks, per-cloud container variants
// (libfabric for EFA on AWS, UCX for InfiniBand on Azure), an OCI-style
// registry with Singularity pulls for VM environments, and the concrete
// build failures the paper documents (the Laghos GPU CUDA conflict, the
// AMG2023 integer-width segfaults).
package containers

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Stack pins the software versions shared by every container and VM image
// in the study (paper §2.7).
type Stack struct {
	FluxSecurity string
	FluxCore     string
	FluxSched    string
	FluxPMIx     string
	CMake        string
	OpenMPI      string
	Libfabric    string // AWS only
}

// StudyStack is the pinned stack used everywhere.
var StudyStack = Stack{
	FluxSecurity: "0.11.0",
	FluxCore:     "0.61.2",
	FluxSched:    "0.33.1",
	FluxPMIx:     "0.4.0",
	CMake:        "3.23.1",
	OpenMPI:      "4.1.2",
	Libfabric:    "1.21.1",
}

// BuildFlag names a compile-time option that matters to correctness.
type BuildFlag string

const (
	// HypreMixedInt sets HYPRE_BigInt to long long int while keeping
	// HYPRE_Int 32-bit — required for AMG2023 GPU builds.
	HypreMixedInt BuildFlag = "hypre-mixedint"
	// HypreBigInt sets both HYPRE_BigInt and HYPRE_Int to long long int —
	// required for AMG2023 CPU builds to avoid segfaults on large systems.
	HypreBigInt BuildFlag = "hypre-bigint"
	// LibfabricEFA links OpenMPI against libfabric for EFA (AWS).
	LibfabricEFA BuildFlag = "libfabric-efa"
	// UCXInfiniBand links UCX for InfiniBand (Azure).
	UCXInfiniBand BuildFlag = "ucx-infiniband"
)

// Spec describes one container build.
type Spec struct {
	App         string
	Provider    cloud.Provider
	Accelerator cloud.Accelerator
	Flags       []BuildFlag
}

// Tag returns the registry tag for the spec.
func (s Spec) Tag() string {
	return s.App + "-" + string(s.Provider) + "-" + string(s.Accelerator)
}

// HasFlag reports whether the spec enables a flag.
func (s Spec) HasFlag(f BuildFlag) bool {
	for _, g := range s.Flags {
		if g == f {
			return true
		}
	}
	return false
}

// Image is a built container.
type Image struct {
	Spec  Spec
	Stack Stack
	// Defect is empty for a correct build; otherwise it names a latent
	// runtime failure (e.g. "segfault") the build system cannot see.
	Defect string
}

// ErrBuildConflict is returned when a build cannot succeed at all.
var ErrBuildConflict = errors.New("containers: dependency conflict")

// Builder simulates container builds and tracks the study's build funnel
// (220 unique builds → 114 tested → 97 intended → 74 used).
type Builder struct {
	sim *sim.Simulation
	log *trace.Log

	Built  []Image
	Failed []Spec
}

// Funnel summarizes the build pipeline the way the paper's §3.1 does:
// how many builds were attempted, how many produced images, how many of
// those images are defect-free (usable), and how many failed outright.
type Funnel struct {
	Attempted int
	Built     int
	Usable    int
	Failed    int
}

// Funnel reports the builder's pipeline counts.
func (b *Builder) Funnel() Funnel {
	f := Funnel{
		Attempted: len(b.Built) + len(b.Failed),
		Built:     len(b.Built),
		Failed:    len(b.Failed),
	}
	for _, img := range b.Built {
		if img.Defect == "" {
			f.Usable++
		}
	}
	return f
}

// NewBuilder returns a builder.
func NewBuilder(s *sim.Simulation, log *trace.Log) *Builder {
	return &Builder{sim: s, log: log}
}

// Absorb appends src's build funnel (built images and failed specs) to the
// receiver, preserving src's order. The study merger uses it to fold
// per-shard builders into the study-wide funnel counts.
func (b *Builder) Absorb(src *Builder) {
	b.Built = append(b.Built, src.Built...)
	b.Failed = append(b.Failed, src.Failed...)
}

// buildTime estimates one container build.
func (b *Builder) buildTime(spec Spec) time.Duration {
	d := 12 * time.Minute
	if spec.Accelerator == cloud.GPU {
		d += 10 * time.Minute // CUDA layers
	}
	if spec.Provider == cloud.Azure {
		d += 8 * time.Minute // UCX + proprietary hpcx/hcoll/sharp stack
	}
	return d
}

// Build compiles a container for the spec. It reproduces the paper's
// documented failures:
//
//   - Laghos GPU: two dependencies require different CUDA versions — the
//     build is impossible (ErrBuildConflict).
//   - AMG2023 GPU without HypreMixedInt, or CPU without HypreBigInt:
//     builds fine but carries a latent segfault defect.
//   - AWS containers must link libfabric for EFA; Azure containers must
//     link UCX — otherwise MPI falls back to TCP (latent "tcp-fallback").
func (b *Builder) Build(spec Spec) (Image, error) {
	b.sim.Clock.Advance(b.buildTime(spec))

	if spec.App == "laghos" && spec.Accelerator == cloud.GPU {
		b.Failed = append(b.Failed, spec)
		b.log.Addf(b.sim.Now(), envOf(spec), trace.AppSetup, trace.Blocking,
			"laghos GPU container impossible: dependencies require conflicting CUDA versions")
		return Image{}, fmt.Errorf("%w: laghos GPU needs two CUDA versions", ErrBuildConflict)
	}

	img := Image{Spec: spec, Stack: StudyStack}
	switch {
	case spec.App == "amg2023" && spec.Accelerator == cloud.GPU && !spec.HasFlag(HypreMixedInt):
		img.Defect = "segfault: HYPRE_BigInt not set to long long int"
	case spec.App == "amg2023" && spec.Accelerator == cloud.CPU && !spec.HasFlag(HypreBigInt):
		img.Defect = "segfault: HYPRE_Int/HYPRE_BigInt too narrow for large systems"
	case spec.Provider == cloud.AWS && !spec.HasFlag(LibfabricEFA):
		img.Defect = "tcp-fallback: OpenMPI built without libfabric"
	case spec.Provider == cloud.Azure && !spec.HasFlag(UCXInfiniBand):
		img.Defect = "tcp-fallback: OpenMPI built without UCX"
	}

	sev := trace.Routine
	if spec.Provider == cloud.Azure {
		// The Azure container bases were challenging to build (high
		// application-setup effort in Table 3).
		sev = trace.Blocking
	}
	b.log.Add(trace.Event{At: b.sim.Now(), Env: envOf(spec), Category: trace.AppSetup,
		Severity: sev, Msg: "built container " + spec.Tag()})
	b.Built = append(b.Built, img)
	return img, nil
}

// CorrectSpec returns the flag set that yields a defect-free image for the
// app on the provider/accelerator, mirroring the study's final builds.
func CorrectSpec(app string, p cloud.Provider, acc cloud.Accelerator) Spec {
	s := Spec{App: app, Provider: p, Accelerator: acc}
	if app == "amg2023" {
		if acc == cloud.GPU {
			s.Flags = append(s.Flags, HypreMixedInt)
		} else {
			s.Flags = append(s.Flags, HypreBigInt)
		}
	}
	switch p {
	case cloud.AWS:
		s.Flags = append(s.Flags, LibfabricEFA)
	case cloud.Azure:
		s.Flags = append(s.Flags, UCXInfiniBand)
	}
	return s
}

func envOf(s Spec) string {
	return string(s.Provider) + "-" + string(s.Accelerator)
}

// PullInjector decides transient registry-pull failures (the chaos
// engine implements it). The registry consults it once per pull; a
// reported fault fails that pull with a *TransientPullError carrying the
// backoff to wait before retrying. Implementations must eventually stop
// failing a tag so retry loops terminate, and must be safe for
// concurrent use. A nil injector means pulls never fail transiently.
type PullInjector interface {
	PullFault(tag string) (backoff time.Duration, fail bool)
}

// TransientPullError reports a registry pull that failed transiently and
// should be retried after Backoff.
type TransientPullError struct {
	Tag     string
	Backoff time.Duration
}

func (e *TransientPullError) Error() string {
	return fmt.Sprintf("containers: transient pull failure for %q (retry in %v)", e.Tag, e.Backoff)
}

// Registry is an OCI-style registry ("ORAS" in the study: job output and
// containers pushed alongside the repository). It is safe for concurrent
// use: pushes and pulls are serialized by an internal mutex so parallel
// environment runners can share one instance or merge private ones.
type Registry struct {
	mu          sync.Mutex
	images      map[string]Image
	pulls       map[string]int
	failedPulls map[string]int
	faults      PullInjector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		images:      make(map[string]Image),
		pulls:       make(map[string]int),
		failedPulls: make(map[string]int),
	}
}

// SetFaults attaches (or, with nil, detaches) a pull-failure injector.
func (r *Registry) SetFaults(inj PullInjector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = inj
}

// Push stores an image under its tag.
func (r *Registry) Push(img Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Spec.Tag()] = img
}

// Pull retrieves an image by tag, counting the pull. When a fault
// injector is attached the pull may instead fail with a
// *TransientPullError; callers retry after its Backoff (see
// SingularityPull). The injector is consulted outside the registry lock
// so implementations may take their own locks freely.
func (r *Registry) Pull(tag string) (Image, error) {
	r.mu.Lock()
	img, ok := r.images[tag]
	inj := r.faults
	r.mu.Unlock()
	if !ok {
		return Image{}, fmt.Errorf("containers: tag %q not in registry", tag)
	}
	if inj != nil {
		if backoff, fail := inj.PullFault(tag); fail {
			r.mu.Lock()
			r.failedPulls[tag]++
			r.mu.Unlock()
			return Image{}, &TransientPullError{Tag: tag, Backoff: backoff}
		}
	}
	r.mu.Lock()
	r.pulls[tag]++
	r.mu.Unlock()
	return img, nil
}

// Pulls reports how many times a tag has been pulled successfully.
func (r *Registry) Pulls(tag string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pulls[tag]
}

// FailedPulls reports how many pulls of a tag failed transiently.
func (r *Registry) FailedPulls(tag string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failedPulls[tag]
}

// Tags lists stored tags, sorted.
func (r *Registry) Tags() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.images))
	for t := range r.images {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Merge copies every image and pull count (successful and failed) of src
// into the receiver. The study merger uses it to fold per-shard
// registries into the study-wide one.
func (r *Registry) Merge(src *Registry) {
	src.mu.Lock()
	images := make(map[string]Image, len(src.images))
	pulls := make(map[string]int, len(src.pulls))
	failed := make(map[string]int, len(src.failedPulls))
	for t, img := range src.images {
		images[t] = img
	}
	for t, n := range src.pulls {
		pulls[t] = n
	}
	for t, n := range src.failedPulls {
		failed[t] = n
	}
	src.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for t, img := range images {
		r.images[t] = img
	}
	for t, n := range pulls {
		r.pulls[t] += n
	}
	for t, n := range failed {
		r.failedPulls[t] += n
	}
}

// maxPullAttempts bounds the retry loop against injectors that never
// recover; well-behaved injectors cap consecutive failures far lower.
const maxPullAttempts = 64

// SingularityPull converts an OCI image for a VM environment. The paper's
// suggested practice: on shared filesystems, pull once *before* spawning
// worker nodes; pulling per-node multiplies the cost. Transient pull
// failures (injected via the registry's PullInjector) are retried after
// their backoff, burning virtual wall-clock but nothing else.
func SingularityPull(s *sim.Simulation, r *Registry, tag string, nodes int, sharedFS bool) (Image, error) {
	var img Image
	for attempt := 1; ; attempt++ {
		var err error
		img, err = r.Pull(tag)
		if err == nil {
			break
		}
		var tpe *TransientPullError
		if !errors.As(err, &tpe) {
			return Image{}, err
		}
		if attempt >= maxPullAttempts {
			return Image{}, fmt.Errorf("containers: pull of %q still failing after %d attempts: %w", tag, attempt, err)
		}
		s.Clock.Advance(tpe.Backoff)
	}
	per := 90 * time.Second // conversion + pull
	if sharedFS {
		s.Clock.Advance(per)
	} else {
		s.Clock.Advance(time.Duration(nodes) * per / 4) // parallel pulls contend on the registry
	}
	return img, nil
}
