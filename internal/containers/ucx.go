package containers

// UCX tuning the study converged on for Azure (paper §3.1, Application
// Setup): there were no suggested practices, and the team found the best
// transports empirically — a different set per Azure environment.

// UCXConfig is a set of MPI/UCX environment variables.
type UCXConfig map[string]string

// BestUCXConfig returns the empirically best configuration for an Azure
// environment kind ("aks" or "cyclecloud"). Other environments need no UCX
// tuning and get an empty config.
func BestUCXConfig(envKind string) UCXConfig {
	switch envKind {
	case "aks":
		return UCXConfig{
			"OMPI_MCA_btl":     "^openib",
			"UCX_UNIFIED_MODE": "y",
			"UCX_TLS":          "ib",
		}
	case "cyclecloud":
		return UCXConfig{
			"UCX_TLS": "ud,shm,rc", // unreliable datagram, shared memory, reliable connected
		}
	default:
		return UCXConfig{}
	}
}
