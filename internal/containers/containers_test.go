package containers

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func newBuilder() (*sim.Simulation, *Builder) {
	s := sim.New(1)
	return s, NewBuilder(s, trace.NewLog())
}

func TestStudyStackVersions(t *testing.T) {
	t.Parallel()
	// Paper §2.7 pins these exactly.
	if StudyStack.FluxCore != "0.61.2" || StudyStack.OpenMPI != "4.1.2" ||
		StudyStack.Libfabric != "1.21.1" || StudyStack.FluxSecurity != "0.11.0" ||
		StudyStack.FluxSched != "0.33.1" || StudyStack.FluxPMIx != "0.4.0" ||
		StudyStack.CMake != "3.23.1" {
		t.Fatalf("study stack versions drifted: %+v", StudyStack)
	}
}

func TestLaghosGPUBuildImpossible(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	_, err := b.Build(Spec{App: "laghos", Provider: cloud.Google, Accelerator: cloud.GPU})
	if !errors.Is(err, ErrBuildConflict) {
		t.Fatalf("err = %v, want ErrBuildConflict (conflicting CUDA versions)", err)
	}
	if len(b.Failed) != 1 {
		t.Fatalf("failed build not tracked")
	}
	// CPU laghos is fine.
	if _, err := b.Build(CorrectSpec("laghos", cloud.Google, cloud.CPU)); err != nil {
		t.Fatalf("laghos CPU: %v", err)
	}
}

func TestAMGIntegerFlagDefects(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	gpuWrong, err := b.Build(Spec{App: "amg2023", Provider: cloud.Google, Accelerator: cloud.GPU})
	if err != nil || gpuWrong.Defect == "" {
		t.Fatalf("AMG GPU without mixed-int must carry a segfault defect: %+v %v", gpuWrong, err)
	}
	cpuWrong, err := b.Build(Spec{App: "amg2023", Provider: cloud.Google, Accelerator: cloud.CPU})
	if err != nil || cpuWrong.Defect == "" {
		t.Fatalf("AMG CPU without big-int must carry a segfault defect")
	}
	gpuRight, err := b.Build(CorrectSpec("amg2023", cloud.Google, cloud.GPU))
	if err != nil || gpuRight.Defect != "" {
		t.Fatalf("correct AMG GPU build should be clean: %+v", gpuRight)
	}
	cpuRight, err := b.Build(CorrectSpec("amg2023", cloud.Google, cloud.CPU))
	if err != nil || cpuRight.Defect != "" {
		t.Fatalf("correct AMG CPU build should be clean: %+v", cpuRight)
	}
}

func TestProviderNetworkLinkage(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	aws, _ := b.Build(Spec{App: "lammps", Provider: cloud.AWS, Accelerator: cloud.CPU})
	if aws.Defect == "" {
		t.Fatalf("AWS build without libfabric must fall back to TCP")
	}
	az, _ := b.Build(Spec{App: "lammps", Provider: cloud.Azure, Accelerator: cloud.CPU})
	if az.Defect == "" {
		t.Fatalf("Azure build without UCX must fall back to TCP")
	}
	good, _ := b.Build(CorrectSpec("lammps", cloud.AWS, cloud.CPU))
	if good.Defect != "" {
		t.Fatalf("correct AWS build should be clean: %q", good.Defect)
	}
	// Google needs no special networking software and shares AWS containers.
	g, _ := b.Build(Spec{App: "lammps", Provider: cloud.Google, Accelerator: cloud.CPU})
	if g.Defect != "" {
		t.Fatalf("Google build needs no special flags: %q", g.Defect)
	}
}

func TestAzureBuildsAreExpensive(t *testing.T) {
	t.Parallel()
	s, b := newBuilder()
	t0 := s.Now()
	b.Build(CorrectSpec("minife", cloud.Google, cloud.CPU))
	googleCost := s.Now() - t0
	t0 = s.Now()
	b.Build(CorrectSpec("minife", cloud.Azure, cloud.CPU))
	azureCost := s.Now() - t0
	if azureCost <= googleCost {
		t.Fatalf("Azure builds (UCX + proprietary stack) must cost more: %v vs %v", azureCost, googleCost)
	}
}

func TestRegistryPushPull(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	r := NewRegistry()
	img, _ := b.Build(CorrectSpec("kripke", cloud.AWS, cloud.CPU))
	r.Push(img)
	got, err := r.Pull("kripke-aws-CPU")
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if got.Spec.App != "kripke" {
		t.Fatalf("pulled wrong image: %+v", got.Spec)
	}
	if r.Pulls("kripke-aws-CPU") != 1 {
		t.Fatalf("pull count = %d", r.Pulls("kripke-aws-CPU"))
	}
	if _, err := r.Pull("missing"); err == nil {
		t.Fatalf("missing tag must error")
	}
	if tags := r.Tags(); len(tags) != 1 || tags[0] != "kripke-aws-CPU" {
		t.Fatalf("Tags = %v", tags)
	}
}

func TestSingularitySharedFSPullOnce(t *testing.T) {
	t.Parallel()
	s, b := newBuilder()
	r := NewRegistry()
	img, _ := b.Build(CorrectSpec("stream", cloud.Azure, cloud.CPU))
	r.Push(img)
	t0 := s.Now()
	if _, err := SingularityPull(s, r, img.Spec.Tag(), 256, true); err != nil {
		t.Fatal(err)
	}
	shared := s.Now() - t0
	t0 = s.Now()
	if _, err := SingularityPull(s, r, img.Spec.Tag(), 256, false); err != nil {
		t.Fatal(err)
	}
	perNode := s.Now() - t0
	if perNode <= shared {
		t.Fatalf("per-node pulls (%v) must cost more than one shared-FS pull (%v)", perNode, shared)
	}
}

// flakyPulls fails every pull until the tag has failed `fails` times,
// then succeeds — a deterministic stand-in for the chaos engine's
// consecutive-failure cap.
type flakyPulls struct {
	mu    sync.Mutex
	fails int
	seen  map[string]int
}

func (f *flakyPulls) PullFault(tag string) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen == nil {
		f.seen = map[string]int{}
	}
	if f.seen[tag] >= f.fails {
		f.seen[tag] = 0
		return 0, false
	}
	f.seen[tag]++
	return 30 * time.Second, true
}

func TestRegistryTransientPullFailure(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	r := NewRegistry()
	img, _ := b.Build(CorrectSpec("kripke", cloud.AWS, cloud.CPU))
	r.Push(img)
	r.SetFaults(&flakyPulls{fails: 2})

	var tpe *TransientPullError
	if _, err := r.Pull(img.Spec.Tag()); !errors.As(err, &tpe) {
		t.Fatalf("first pull = %v, want TransientPullError", err)
	}
	if tpe.Backoff != 30*time.Second || tpe.Tag != img.Spec.Tag() {
		t.Fatalf("unexpected transient error: %+v", tpe)
	}
	if _, err := r.Pull(img.Spec.Tag()); !errors.As(err, &tpe) {
		t.Fatalf("second pull = %v, want TransientPullError", err)
	}
	if _, err := r.Pull(img.Spec.Tag()); err != nil {
		t.Fatalf("third pull should succeed: %v", err)
	}
	if r.FailedPulls(img.Spec.Tag()) != 2 || r.Pulls(img.Spec.Tag()) != 1 {
		t.Fatalf("counts: %d failed, %d ok; want 2, 1",
			r.FailedPulls(img.Spec.Tag()), r.Pulls(img.Spec.Tag()))
	}
}

func TestSingularityPullRetriesThroughFaults(t *testing.T) {
	t.Parallel()
	s, b := newBuilder()
	r := NewRegistry()
	img, _ := b.Build(CorrectSpec("stream", cloud.Azure, cloud.CPU))
	r.Push(img)
	r.SetFaults(&flakyPulls{fails: 3})

	t0 := s.Now()
	got, err := SingularityPull(s, r, img.Spec.Tag(), 64, true)
	if err != nil {
		t.Fatalf("SingularityPull through transient faults: %v", err)
	}
	if got.Spec.App != "stream" {
		t.Fatalf("pulled wrong image: %+v", got.Spec)
	}
	// Three 30s backoffs plus the 90s shared-FS pull itself.
	if want := 3*30*time.Second + 90*time.Second; s.Now()-t0 != want {
		t.Fatalf("retry wall-clock = %v, want %v", s.Now()-t0, want)
	}
}

// TestRegistryConcurrentPullFaults drives the fault path from many
// goroutines; run with -race (the CI race matrix does) to prove the new
// path keeps the registry lock-correct.
func TestRegistryConcurrentPullFaults(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	r := NewRegistry()
	img, _ := b.Build(CorrectSpec("lammps", cloud.AWS, cloud.CPU))
	r.Push(img)
	r.SetFaults(&flakyPulls{fails: 1})
	tag := img.Spec.Tag()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, _ = r.Pull(tag)
				r.Pulls(tag)
				r.FailedPulls(tag)
			}
		}()
	}
	wg.Wait()
	if r.Pulls(tag)+r.FailedPulls(tag) != 8*500 {
		t.Fatalf("pull accounting lost updates: %d ok + %d failed != %d",
			r.Pulls(tag), r.FailedPulls(tag), 8*500)
	}
}

func TestBestUCXConfig(t *testing.T) {
	t.Parallel()
	aks := BestUCXConfig("aks")
	if aks["UCX_TLS"] != "ib" || aks["UCX_UNIFIED_MODE"] != "y" || aks["OMPI_MCA_btl"] != "^openib" {
		t.Fatalf("AKS UCX config wrong: %v", aks)
	}
	cc := BestUCXConfig("cyclecloud")
	if cc["UCX_TLS"] != "ud,shm,rc" {
		t.Fatalf("CycleCloud UCX config wrong: %v", cc)
	}
	if len(BestUCXConfig("gke")) != 0 {
		t.Fatalf("non-Azure environments need no UCX tuning")
	}
}

func TestBuildFunnel(t *testing.T) {
	t.Parallel()
	_, b := newBuilder()
	b.Build(CorrectSpec("lammps", cloud.AWS, cloud.CPU))                      // usable
	b.Build(Spec{App: "lammps", Provider: cloud.AWS, Accelerator: cloud.CPU}) // defective (no libfabric)
	b.Build(Spec{App: "laghos", Provider: cloud.AWS, Accelerator: cloud.GPU}) // fails outright
	f := b.Funnel()
	if f.Attempted != 3 || f.Built != 2 || f.Usable != 1 || f.Failed != 1 {
		t.Fatalf("funnel = %+v", f)
	}
}

func TestSpecTagAndFlags(t *testing.T) {
	t.Parallel()
	s := CorrectSpec("amg2023", cloud.Azure, cloud.GPU)
	if s.Tag() != "amg2023-azure-GPU" {
		t.Fatalf("Tag = %q", s.Tag())
	}
	if !s.HasFlag(HypreMixedInt) || !s.HasFlag(UCXInfiniBand) {
		t.Fatalf("CorrectSpec missing flags: %v", s.Flags)
	}
	if s.HasFlag(HypreBigInt) {
		t.Fatalf("GPU spec must use mixed-int, not big-int")
	}
}
